//! The compiled-engine cache: LRU + single-flight.
//!
//! Compiling a program (parse → sema → fuse → lower → jit) costs
//! milliseconds; running it costs microseconds. A service that recompiled
//! per request would be compile-bound, so the daemon keys ready
//! `Arc<Engine>`s by [`EngineKey`] — source hash, entry point, fusion
//! options, backend, opt level, args — and reuses them across requests
//! and connections.
//!
//! Two properties matter under concurrency:
//!
//! - **Single-flight**: N simultaneous requests for one uncached program
//!   trigger exactly one compile; the other N−1 block on the in-flight
//!   slot and share its result. Asserted end-to-end against
//!   `grafter_vm::lowering_count()` by the server test suite.
//! - **LRU eviction**: at most `capacity` ready engines stay resident;
//!   inserting past that drops the least-recently-used. In-flight builds
//!   are never evicted (there is a waiter by definition).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use grafter_engine::{Engine, EngineKey, Error};

/// Counters exposed by the `stats` method.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Ready engines currently resident.
    pub size: u64,
    /// Requests answered from a ready engine.
    pub hits: u64,
    /// Requests that started a compile.
    pub misses: u64,
    /// Ready engines dropped by LRU pressure.
    pub evictions: u64,
    /// Requests that blocked on another request's in-flight compile
    /// instead of compiling themselves (single-flight saves).
    pub single_flight_waits: u64,
}

enum Slot {
    /// A compile is in flight; waiters sleep on the cache condvar.
    Building,
    Ready {
        engine: Arc<Engine>,
        last_used: u64,
    },
}

struct CacheState {
    map: HashMap<EngineKey, Slot>,
    /// Logical clock for LRU ordering.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    waits: u64,
}

/// The daemon's compiled-engine cache. One instance is shared by every
/// connection thread.
pub struct EngineCache {
    state: Mutex<CacheState>,
    cv: Condvar,
    capacity: usize,
}

impl EngineCache {
    /// A cache holding at most `capacity` ready engines (clamped ≥ 1).
    pub fn new(capacity: usize) -> EngineCache {
        EngineCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                waits: 0,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The engine for `key`, compiling it via `build` on a miss.
    ///
    /// Concurrent callers with the same key during the compile block and
    /// share the one result (single-flight); the compile itself runs
    /// outside the cache lock, so distinct programs compile in parallel.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s compile error to the caller that ran it;
    /// blocked waiters then retry (first one re-attempts the build).
    pub fn get_or_build(
        &self,
        key: &EngineKey,
        build: impl FnOnce() -> Result<Engine, Error>,
    ) -> Result<Arc<Engine>, Error> {
        let mut state = self.state.lock().expect("cache lock");
        loop {
            let tick = state.tick + 1;
            match state.map.get_mut(key) {
                Some(Slot::Ready { engine, last_used }) => {
                    *last_used = tick;
                    let engine = Arc::clone(engine);
                    state.tick = tick;
                    state.hits += 1;
                    return Ok(engine);
                }
                Some(Slot::Building) => {
                    state.waits += 1;
                    state = self.cv.wait(state).expect("cache wait");
                }
                None => break,
            }
        }
        state.misses += 1;
        state.map.insert(key.clone(), Slot::Building);
        drop(state);

        let built = build();

        let mut state = self.state.lock().expect("cache lock");
        match built {
            Ok(engine) => {
                let engine = Arc::new(engine);
                state.tick += 1;
                let tick = state.tick;
                state.map.insert(
                    key.clone(),
                    Slot::Ready {
                        engine: Arc::clone(&engine),
                        last_used: tick,
                    },
                );
                self.evict_lru(&mut state);
                self.cv.notify_all();
                Ok(engine)
            }
            Err(e) => {
                // Failed compiles leave no residue; a waiter (or retry)
                // attempts the build afresh.
                state.map.remove(key);
                self.cv.notify_all();
                Err(e)
            }
        }
    }

    fn evict_lru(&self, state: &mut CacheState) {
        while state
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
            > self.capacity
        {
            let victim: Option<EngineKey> = state
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*last_used, k)),
                    Slot::Building => None,
                })
                .min_by_key(|&(t, _)| t)
                .map(|(_, k)| k.clone());
            match victim {
                Some(k) => {
                    state.map.remove(&k);
                    state.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Applies `f` to every resident ready engine (in no particular
    /// order; in-flight builds are skipped). What the `stats` method's
    /// `fusion` aggregate iterates.
    pub fn for_each_ready(&self, mut f: impl FnMut(&Arc<Engine>)) {
        let state = self.state.lock().expect("cache lock");
        for slot in state.map.values() {
            if let Slot::Ready { engine, .. } = slot {
                f(engine);
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("cache lock");
        CacheStats {
            size: state
                .map
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count() as u64,
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            single_flight_waits: state.waits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafter_engine::{Backend, FusionOptions, OptLevel};

    fn key(tag: &str) -> EngineKey {
        EngineKey::new(
            tag,
            "N",
            &["t"],
            &FusionOptions::default(),
            Backend::Vm,
            OptLevel::O2,
        )
    }

    fn tiny_engine(tag: usize) -> Result<Engine, Error> {
        let src =
            format!("tree class N {{ int a = {tag}; virtual traversal t() {{ a = a + 1; }} }}");
        Engine::builder().source(src).entry("N", &["t"]).build()
    }

    #[test]
    fn hits_reuse_misses_compile_lru_evicts() {
        let cache = EngineCache::new(2);
        let a = cache.get_or_build(&key("a"), || tiny_engine(1)).unwrap();
        let a2 = cache
            .get_or_build(&key("a"), || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        cache.get_or_build(&key("b"), || tiny_engine(2)).unwrap();
        // Touch `a` so `b` is the LRU victim when `c` lands.
        cache.get_or_build(&key("a"), || panic!("cached")).unwrap();
        cache.get_or_build(&key("c"), || tiny_engine(3)).unwrap();

        let stats = cache.stats();
        assert_eq!(stats.size, 2);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.evictions, 1);

        // `b` was evicted, `a` survived.
        cache
            .get_or_build(&key("a"), || panic!("still cached"))
            .unwrap();
        let rebuilt = std::cell::Cell::new(false);
        cache
            .get_or_build(&key("b"), || {
                rebuilt.set(true);
                tiny_engine(2)
            })
            .unwrap();
        assert!(rebuilt.get(), "evicted entry must rebuild");
    }

    #[test]
    fn failed_builds_leave_no_residue() {
        let cache = EngineCache::new(4);
        let err = cache.get_or_build(&key("bad"), || {
            Engine::builder()
                .source("not a program")
                .entry("N", &["t"])
                .build()
        });
        assert!(err.is_err());
        assert_eq!(cache.stats().size, 0);
        // The key is free again: a good build succeeds.
        cache.get_or_build(&key("bad"), || tiny_engine(9)).unwrap();
        assert_eq!(cache.stats().size, 1);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = Arc::new(EngineCache::new(4));
        let builds = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let builds = Arc::clone(&builds);
            handles.push(std::thread::spawn(move || {
                cache
                    .get_or_build(&key("shared"), || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters actually wait.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        tiny_engine(5)
                    })
                    .unwrap()
            }));
        }
        let engines: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(builds.load(Ordering::SeqCst), 1, "single-flight: one build");
        assert!(engines.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        assert!(cache.stats().single_flight_waits >= 1);
    }
}
