//! grafter-server: a long-running traversal service (`grafterd`) over
//! the compile-once Grafter engine, plus its load generator
//! (`grafter-load`).
//!
//! The daemon speaks a length-prefixed line protocol (`<len>\n<body>\n`,
//! JSON bodies) defined in [`proto`], keeps compiled engines resident in
//! the single-flight LRU [`cache`], and executes every request on the
//! engine crate's persistent worker pool — steady-state cached requests
//! perform **zero** compiles and **zero** thread spawns, which the
//! `stats` method exposes for end-to-end assertion.

pub mod cache;
pub mod daemon;
pub mod proto;

pub use cache::{CacheStats, EngineCache};
pub use daemon::{Daemon, DaemonOptions};
