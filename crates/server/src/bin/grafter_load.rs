//! grafter-load — the grafterd load generator.
//!
//! ```text
//! grafter-load --addr HOST:PORT [--smoke] [--clients N] [--out PATH]
//! ```
//!
//! Drives all four paper case studies against a running daemon in three
//! phases:
//!
//! 1. **Warm**: compiles every case's engine (cache misses) and one batch
//!    per case, so the daemon's worker pool reaches steady width.
//! 2. **Uncached**: per-case source variants (a comment suffix changes
//!    the source hash) force fresh compiles — the mixed cached/uncached
//!    traffic a real service sees.
//! 3. **Steady**: concurrent clients hammer the *cached* engines with
//!    single runs and streamed batches, measuring per-request latency.
//!
//! After the steady phase the daemon's `stats` method must show **zero**
//! new lowerings and **zero** new pool thread spawns — cached requests
//! neither compile nor spawn. A violation exits 1.
//!
//! Results (p50/p99 latency, sustained trees/sec per case) land in
//! `BENCH_server.json`.

use std::io::{self, BufWriter};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Instant;

use grafter_obs::json::{parse, Json, JsonWriter};
use grafter_server::proto::{
    render_bare, render_run, render_run_batch, write_frame, FrameReader, Incoming, InputSpec,
    ProgramSpec,
};
use grafter_workloads::case_studies;

/// Reorder window requested for streamed batches.
const WINDOW: usize = 8;

struct Shape {
    /// Concurrent clients per case in the steady phase.
    clients: usize,
    /// Single `run` requests per client.
    runs_per_client: usize,
    /// Inputs per `run_batch` request (one per client).
    batch: usize,
    /// Fresh-compile source variants per case in the uncached phase.
    variants: usize,
    /// Whether to use each case's bench-sized input (smoke uses the
    /// smaller test size).
    bench_sized: bool,
}

impl Shape {
    fn smoke() -> Shape {
        Shape {
            clients: 2,
            runs_per_client: 8,
            batch: 8,
            variants: 2,
            bench_sized: false,
        }
    }

    fn full() -> Shape {
        Shape {
            clients: 4,
            runs_per_client: 40,
            batch: 16,
            variants: 3,
            bench_sized: true,
        }
    }

    /// The generated-input size for `case` — the `size` parameter is
    /// per-workload (node count for ast/render, tree *depth* for kdtree,
    /// point count for fmm), so it must come from the case matrix.
    fn size_for(&self, case: &grafter_workloads::CaseStudy) -> usize {
        if self.bench_sized {
            case.bench_size
        } else {
            case.test_size
        }
    }
}

/// One framed connection to the daemon.
struct Client {
    reader: FrameReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: FrameReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// One request, one response frame.
    fn call(&mut self, body: &str) -> io::Result<Json> {
        write_frame(&mut self.writer, body)?;
        self.read_body()
    }

    /// One `run_batch` request; reads chunk frames until the `done`
    /// frame, returning (results seen, done-frame total).
    fn call_batch(&mut self, body: &str) -> io::Result<(usize, usize)> {
        write_frame(&mut self.writer, body)?;
        let mut seen = 0usize;
        loop {
            let frame = self.read_body()?;
            expect_ok(&frame)?;
            if matches!(frame.get("done"), Some(Json::Bool(true))) {
                let total = frame.get("total").and_then(Json::as_num).unwrap_or(0.0);
                return Ok((seen, total as usize));
            }
            seen += frame
                .get("results")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
        }
    }

    fn read_body(&mut self) -> io::Result<Json> {
        loop {
            match self.reader.read_frame() {
                Ok(Incoming::Frame(body)) => {
                    return parse(&body).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unparseable response: {e}"),
                        )
                    })
                }
                Ok(Incoming::Idle) => {}
                Ok(Incoming::Closed) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection",
                    ))
                }
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("protocol error: {e:?}"),
                    ))
                }
            }
        }
    }
}

fn expect_ok(body: &Json) -> io::Result<()> {
    if matches!(body.get("ok"), Some(Json::Bool(true))) {
        return Ok(());
    }
    let msg = body
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap_or("daemon reported failure");
    Err(io::Error::other(msg.to_string()))
}

/// Daemon-side counters sampled via the `stats` method.
#[derive(Clone, Copy, Debug, Default)]
struct StatsSample {
    lowerings: u64,
    spawned: u64,
    cache_hits: u64,
    cache_misses: u64,
    single_flight_waits: u64,
}

fn sample_stats(client: &mut Client) -> io::Result<StatsSample> {
    let body = client.call(&render_bare("stats"))?;
    expect_ok(&body)?;
    let num = |doc: &Json, path: &[&str]| -> u64 {
        let mut cur = doc.clone();
        for key in path {
            match cur.get(key) {
                Some(next) => cur = next.clone(),
                None => return 0,
            }
        }
        cur.as_num().unwrap_or(0.0) as u64
    };
    Ok(StatsSample {
        lowerings: num(&body, &["lowerings"]),
        spawned: num(&body, &["pool", "spawned_total"]),
        cache_hits: num(&body, &["cache", "hits"]),
        cache_misses: num(&body, &["cache", "misses"]),
        single_flight_waits: num(&body, &["cache", "single_flight_waits"]),
    })
}

fn program_for(case: &grafter_workloads::CaseStudy) -> ProgramSpec {
    ProgramSpec {
        source: case.source.to_string(),
        root: case.root_class.to_string(),
        passes: case.passes.iter().map(|p| (*p).to_string()).collect(),
        // The VM backend *lowers* at compile time, which is exactly what
        // the steady-phase zero-lowerings assertion watches.
        backend: grafter_engine::Backend::Vm,
        opt_level: Default::default(),
        fusion: Default::default(),
        args: case.args.clone(),
    }
}

/// A distinct-but-equivalent program: the comment changes the source
/// hash (a cache miss and fresh compile), nothing else.
fn variant_of(program: &ProgramSpec, k: usize) -> ProgramSpec {
    let mut p = program.clone();
    p.source = format!("{}\n/* load variant {k} */", p.source);
    p
}

fn gen_input(case: &grafter_workloads::CaseStudy, size: usize, seed: u64) -> InputSpec {
    InputSpec::Gen {
        workload: case.name.to_string(),
        size,
        seed,
    }
}

/// Per-case steady-phase measurements.
struct CaseResult {
    name: String,
    requests: usize,
    trees: usize,
    p50_us: f64,
    p99_us: f64,
    trees_per_sec: f64,
}

fn percentile(sorted_ns: &[u128], pct: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = (sorted_ns.len() - 1) * pct / 100;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Runs the steady phase for one case: `clients` concurrent connections,
/// each issuing single runs then one streamed batch, all against the
/// already-cached engine.
fn steady_case(
    addr: &str,
    case: &grafter_workloads::CaseStudy,
    shape: &Shape,
) -> io::Result<CaseResult> {
    let program = program_for(case);
    let start = Instant::now();
    let outcomes = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..shape.clients {
            let program = &program;
            handles.push(scope.spawn(move || -> io::Result<(Vec<u128>, usize)> {
                let mut client = Client::connect(addr)?;
                let mut latencies = Vec::new();
                let mut trees = 0usize;
                for r in 0..shape.runs_per_client {
                    let seed = (c * shape.runs_per_client + r) as u64;
                    let body = render_run(program, &gen_input(case, shape.size_for(case), seed));
                    let t = Instant::now();
                    let response = client.call(&body)?;
                    latencies.push(t.elapsed().as_nanos());
                    expect_ok(&response)?;
                    trees += 1;
                }
                let inputs: Vec<InputSpec> = (0..shape.batch)
                    .map(|i| gen_input(case, shape.size_for(case), 1_000 + i as u64))
                    .collect();
                let body = render_run_batch(program, &inputs, WINDOW);
                let t = Instant::now();
                let (seen, total) = client.call_batch(&body)?;
                latencies.push(t.elapsed().as_nanos());
                if seen != shape.batch || total != shape.batch {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("batch returned {seen}/{total}, expected {}", shape.batch),
                    ));
                }
                trees += shape.batch;
                Ok((latencies, trees))
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<io::Result<Vec<_>>>()
    })?;
    let wall = start.elapsed();

    let mut latencies: Vec<u128> = Vec::new();
    let mut trees = 0usize;
    for (lat, t) in outcomes {
        latencies.extend(lat);
        trees += t;
    }
    latencies.sort_unstable();
    Ok(CaseResult {
        name: case.name.to_string(),
        requests: latencies.len(),
        trees,
        p50_us: percentile(&latencies, 50),
        p99_us: percentile(&latencies, 99),
        trees_per_sec: trees as f64 / wall.as_secs_f64().max(1e-9),
    })
}

fn usage() -> ! {
    eprintln!("usage: grafter-load --addr HOST:PORT [--smoke] [--clients N] [--out PATH]");
    std::process::exit(2)
}

fn run(addr: &str, shape: &Shape, smoke: bool, out: &str) -> io::Result<bool> {
    let cases = case_studies();
    let mut control = Client::connect(addr)?;

    // Warm phase: compile every case's engine and bring the pool to
    // steady width (a batch spawns up to `batch` workers once; steady
    // batches then reuse them).
    for case in &cases {
        let program = program_for(case);
        let body = render_run(&program, &gen_input(case, shape.size_for(case), 1));
        expect_ok(&control.call(&body)?)?;
        let inputs: Vec<InputSpec> = (0..shape.batch)
            .map(|i| gen_input(case, shape.size_for(case), i as u64))
            .collect();
        let (seen, _) = control.call_batch(&render_run_batch(&program, &inputs, WINDOW))?;
        if seen != shape.batch {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "warm batch short",
            ));
        }
    }
    let after_warm = sample_stats(&mut control)?;

    // Uncached phase: distinct sources must compile (cache misses).
    let mut uncached: Vec<u128> = Vec::new();
    for case in &cases {
        let program = program_for(case);
        for k in 0..shape.variants {
            let variant = variant_of(&program, k);
            let body = render_run(&variant, &gen_input(case, shape.size_for(case), k as u64));
            let t = Instant::now();
            expect_ok(&control.call(&body)?)?;
            uncached.push(t.elapsed().as_nanos());
        }
    }
    uncached.sort_unstable();
    let after_uncached = sample_stats(&mut control)?;
    if after_uncached.cache_misses <= after_warm.cache_misses {
        eprintln!("grafter-load: variant programs did not miss the cache");
        return Ok(false);
    }

    // Steady phase: cached engines only. Zero compiles, zero spawns.
    let before = sample_stats(&mut control)?;
    let mut results = Vec::new();
    for case in &cases {
        results.push(steady_case(addr, case, shape)?);
    }
    let after = sample_stats(&mut control)?;

    let lowerings_delta = after.lowerings - before.lowerings;
    let spawned_delta = after.spawned - before.spawned;
    let mut ok = true;
    if lowerings_delta != 0 {
        eprintln!("grafter-load: steady phase performed {lowerings_delta} lowerings (want 0)");
        ok = false;
    }
    if spawned_delta != 0 {
        eprintln!("grafter-load: steady phase spawned {spawned_delta} pool threads (want 0)");
        ok = false;
    }
    if after.cache_hits <= before.cache_hits {
        eprintln!("grafter-load: steady phase did not hit the engine cache");
        ok = false;
    }

    let mut w = JsonWriter::with_capacity(1024);
    w.begin_obj();
    w.key("bench").str("server");
    w.key("smoke").bool(smoke);
    w.key("clients").num(shape.clients);
    w.key("window").num(WINDOW);
    w.key("bench_sized").bool(shape.bench_sized);
    w.key("steady").begin_obj();
    w.key("lowerings_delta").num(lowerings_delta);
    w.key("spawned_delta").num(spawned_delta);
    w.key("cache_hits")
        .num(after.cache_hits - before.cache_hits);
    w.end_obj();
    w.key("uncached").begin_obj();
    w.key("requests").num(uncached.len());
    w.key("p50_us").float(percentile(&uncached, 50));
    w.key("p99_us").float(percentile(&uncached, 99));
    w.end_obj();
    w.key("single_flight_waits").num(after.single_flight_waits);
    w.key("cases").begin_arr();
    for r in &results {
        w.begin_obj();
        w.key("name").str(&r.name);
        w.key("requests").num(r.requests);
        w.key("trees").num(r.trees);
        w.key("p50_us").float(r.p50_us);
        w.key("p99_us").float(r.p99_us);
        w.key("trees_per_sec").float(r.trees_per_sec);
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    std::fs::write(out, format!("{}\n", w.finish()))?;

    for r in &results {
        println!(
            "{:>8}: {} requests, p50 {:.1} us, p99 {:.1} us, {:.0} trees/sec",
            r.name, r.requests, r.p50_us, r.p99_us, r.trees_per_sec
        );
    }
    println!(
        "steady: lowerings_delta={lowerings_delta} spawned_delta={spawned_delta} -> {}",
        if ok { "ok" } else { "VIOLATION" }
    );
    Ok(ok)
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut smoke = false;
    let mut clients: Option<usize> = None;
    let mut out = "BENCH_server.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = Some(value()),
            "--smoke" => smoke = true,
            "--clients" => match value().parse() {
                Ok(n) if n > 0 => clients = Some(n),
                _ => usage(),
            },
            "--out" => out = value(),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let mut shape = if smoke { Shape::smoke() } else { Shape::full() };
    if let Some(c) = clients {
        shape.clients = c;
    }

    match run(&addr, &shape, smoke, &out) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("grafter-load: {e}");
            ExitCode::FAILURE
        }
    }
}
