//! grafterd — the long-running Grafter traversal service.
//!
//! ```text
//! grafterd [--addr HOST:PORT] [--workers N] [--cache N]
//! ```
//!
//! Binds (port 0 picks an ephemeral port), prints
//! `grafterd listening on <addr>` on stdout (scripts and CI parse this
//! line to discover the resolved port), then serves until SIGTERM or
//! SIGINT. On a signal it stops accepting, drains in-flight requests and
//! exits 0.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use grafter_server::{Daemon, DaemonOptions};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // Async-signal-safe: one atomic store; the serve loop polls it.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGTERM (15) and SIGINT (2) via the libc
/// `signal` symbol — the one C binding this crate needs, declared here
/// rather than pulling in a dependency.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

fn usage() -> ! {
    eprintln!("usage: grafterd [--addr HOST:PORT] [--workers N] [--cache N]");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7421".to_string();
    let mut opts = DaemonOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--workers" => match value().parse() {
                Ok(n) if n > 0 => opts.workers = n,
                _ => usage(),
            },
            "--cache" => match value().parse() {
                Ok(n) if n > 0 => opts.cache_capacity = n,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    install_signal_handlers();

    let daemon = match Daemon::bind(&addr, opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("grafterd: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = daemon.local_addr().expect("bound socket has an address");
    // CI and scripts grep this exact line for the resolved port.
    println!("grafterd listening on {bound}");

    match daemon.serve(&SHUTDOWN) {
        Ok(()) => {
            println!("grafterd drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("grafterd: acceptor failed: {e}");
            ExitCode::FAILURE
        }
    }
}
