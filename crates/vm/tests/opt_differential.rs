//! Differential testing of the bytecode optimizer: `O0 == O1 == O2 ==
//! interp` — bit-identical heap snapshots, `Metrics`, simulated cache
//! traffic and final globals — across the paper's four case studies,
//! fused and unfused, plus one focused program per peephole pattern
//! proving the pattern actually fires (and stays observation-preserving).
//!
//! This is the executable statement of the optimizer's contract (see
//! `grafter_vm::opt`): optimization sheds dispatch overhead, never
//! counters.

use grafter::FusionOptions;
use grafter_cachesim::CacheHierarchy;
use grafter_engine::{Backend, Engine, OptLevel, Report};
use grafter_runtime::{with_stack, Heap, NodeId, SnapValue};
use grafter_vm::{lower_with, VmOptions};
use grafter_workloads::case_studies;

const LEVELS: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

/// Runs `engine` on a freshly built tree with a Xeon cache model
/// attached; returns the report and the final heap snapshot.
fn run_snap(
    engine: &Engine,
    build: &dyn Fn(&mut Heap) -> NodeId,
) -> (Report, Vec<(String, Vec<SnapValue>)>) {
    let mut session = engine.session().with_cache(CacheHierarchy::xeon());
    let root = session.build_tree(build);
    let report = session.run(root).expect("case study runs");
    let snap = session.snapshot(root);
    (report, snap)
}

#[test]
fn opt_levels_match_interp_on_all_case_studies() {
    with_stack(256 << 20, || {
        for case in case_studies() {
            for (kind, opts) in [
                ("fused", FusionOptions::default()),
                ("unfused", FusionOptions::unfused()),
            ] {
                let interp = case.engine_with(opts.clone(), Backend::Interp);
                let (r_interp, snap_interp) = run_snap(&interp, &|h| case.build_test(h));
                for level in LEVELS {
                    let vm = case.engine_opt(opts.clone(), level);
                    let (r_vm, snap_vm) = run_snap(&vm, &|h| case.build_test(h));
                    assert_eq!(
                        snap_interp, snap_vm,
                        "{}/{kind}/{level}: heap states diverge from interp",
                        case.name
                    );
                    // Metrics, cache traffic and globals in one shot:
                    // Report equality ignores backend-independent fields
                    // (wall, opt level) by construction.
                    assert_eq!(
                        r_interp.metrics, r_vm.metrics,
                        "{}/{kind}/{level}: metrics diverge from interp",
                        case.name
                    );
                    assert_eq!(
                        r_interp.cache, r_vm.cache,
                        "{}/{kind}/{level}: cache traffic diverges from interp",
                        case.name
                    );
                    assert_eq!(
                        r_interp.globals, r_vm.globals,
                        "{}/{kind}/{level}: final globals diverge from interp",
                        case.name
                    );
                }
            }
        }
    });
}

#[test]
fn opt_levels_match_each_other_exactly() {
    // Transitivity spot-check at the Report level (PartialEq covers
    // metrics + cache + globals): O0 == O1 == O2 on every case study.
    with_stack(256 << 20, || {
        for case in case_studies() {
            let reports: Vec<(Report, _)> = LEVELS
                .iter()
                .map(|&level| {
                    let vm = case.engine_opt(FusionOptions::default(), level);
                    run_snap(&vm, &|h| case.build_test(h))
                })
                .collect();
            for (r, snap) in &reports[1..] {
                assert_eq!(
                    &reports[0].0, r,
                    "{}: reports diverge across levels",
                    case.name
                );
                assert_eq!(&reports[0].1, snap, "{}: snapshots diverge", case.name);
            }
        }
    });
}

// ---- per-pattern peephole tests ------------------------------------------
//
// Each minimal program is designed so the lowered op stream contains one
// specific adjacent pair; the test asserts (a) the superinstruction
// appears in the `O2` disassembly (the pattern fired), (b) the `O0`
// disassembly does not contain it, and (c) `O0`/`O2` execution still
// agree with the interpreter on the final tree and every counter.

/// List program: every class reachable, one recursion, rich statements.
fn check_pattern(src: &str, root: &str, passes: &[&str], mnemonic: &str) {
    let engine_at = |level: OptLevel, backend: Backend| {
        Engine::builder()
            .source(src)
            .entry(root, passes)
            .backend(backend)
            .opt_level(level)
            .build()
            .unwrap_or_else(|e| panic!("pattern program compiles: {e}"))
    };
    // (a) + (b): the pattern fires at O2 and only at O2.
    let o2 = engine_at(OptLevel::O2, Backend::Vm);
    let o0 = engine_at(OptLevel::O0, Backend::Vm);
    let disasm_o2 = o2.module().unwrap().disassemble();
    let disasm_o0 = o0.module().unwrap().disassemble();
    assert!(
        disasm_o2.contains(mnemonic),
        "`{mnemonic}` did not fire; O2 disassembly:\n{disasm_o2}"
    );
    assert!(
        !disasm_o0.contains(mnemonic),
        "`{mnemonic}` must not appear at O0:\n{disasm_o0}"
    );
    // (c): observational bit-identity against the interpreter.
    let interp = engine_at(OptLevel::O2, Backend::Interp);
    let build = |h: &mut Heap| {
        let end = h.alloc_by_name("E").unwrap();
        let mut cur = end;
        for _ in 0..8 {
            let c = h.alloc_by_name("C").unwrap();
            h.set_child_by_name(c, "next", Some(cur)).unwrap();
            cur = c;
        }
        cur
    };
    let (ri, si) = run_snap(&interp, &build);
    for engine in [&o0, &o2] {
        let (rv, sv) = run_snap(engine, &build);
        assert_eq!(si, sv, "`{mnemonic}`: snapshots diverge");
        assert_eq!(ri.metrics, rv.metrics, "`{mnemonic}`: metrics diverge");
        assert_eq!(ri.cache, rv.cache, "`{mnemonic}`: cache traffic diverges");
        assert_eq!(ri.globals, rv.globals, "`{mnemonic}`: globals diverge");
    }
}

/// Wraps a `C.go` traversal body into the standard list-program shape.
fn list_program(header: &str, body: &str) -> String {
    format!(
        r#"
        {header}
        tree class N {{
            child N* next;
            int a = 1; int b = 2; bool flag = true;
            virtual traversal go(int p) {{}}
        }}
        tree class C : N {{
            traversal go(int p) {{
                {body}
                this->next->go(p);
            }}
        }}
        tree class E : N {{ }}
    "#
    )
}

fn check_list_pattern(body: &str, mnemonic: &str) {
    check_pattern(&list_program("", body), "N", &["go"], mnemonic);
}

#[test]
fn pattern_tree_loc_fires() {
    // ReadTree + StoreLocal (load-field + coerce).
    check_list_pattern("int t = a; b = t + p;", "stloc.t");
}

#[test]
fn pattern_tree_bin_fires() {
    // ReadTree + Bin (load + binop).
    check_list_pattern("b = p + a;", "bin.t");
}

#[test]
fn pattern_const_bin_fires() {
    check_list_pattern("b = p + 7;", "bin.c");
}

#[test]
fn pattern_loc_bin_fires() {
    check_list_pattern("int u = 3; b = p + u;", "bin.l");
}

#[test]
fn pattern_glob_bin_fires() {
    check_pattern(
        &list_program("global int G = 5;", "b = p + G;"),
        "N",
        &["go"],
        "bin.g",
    );
}

#[test]
fn pattern_bin_branch_fires() {
    // Pure-call operands keep the compare a plain Bin, so Bin + Branch
    // fuses (operands produced by fusable ops fuse into cmpbr.c/.l
    // instead — covered below).
    check_pattern(
        &list_program(
            "pure float fabs(float x);",
            "if (fabs(p) > fabs(b)) { b = p; }",
        ),
        "N",
        &["go"],
        "cmpbr ",
    );
}

#[test]
fn pattern_const_bin_branch_fires() {
    // The kind-tag idiom: ReadTree, Const+Bin -> ConstBin (round one),
    // ConstBin + Branch -> cmpbr.c (round two).
    check_list_pattern("if (a == 1) { b = p; }", "cmpbr.c");
}

#[test]
fn pattern_loc_bin_branch_fires() {
    check_list_pattern("int u = 2; if (p > u) { b = p; }", "cmpbr.l");
}

#[test]
fn pattern_loc_branch_fires() {
    check_list_pattern("bool t = flag; if (t) { b = p; }", "brfalse.l");
}

#[test]
fn pattern_tree_branch_fires() {
    check_list_pattern("if (flag) { b = p; }", "brfalse.t");
}

#[test]
fn pattern_bin_tree_fires() {
    // Pure-call operands again: Bin + WriteTree (store-field from the
    // accumulator).
    check_pattern(
        &list_program("pure float fabs(float x);", "b = fabs(p) + fabs(a);"),
        "N",
        &["go"],
        "wrtree.b",
    );
}

#[test]
fn pattern_bin_loc_fires() {
    check_pattern(
        &list_program(
            "pure float fabs(float x);",
            "int t = fabs(p) + fabs(a); b = t + 1;",
        ),
        "N",
        &["go"],
        "stloc.b",
    );
}

#[test]
fn pattern_bin_glob_fires() {
    check_pattern(
        &list_program(
            "global int G = 0; pure float fabs(float x);",
            "G = fabs(p) + fabs(a);",
        ),
        "N",
        &["go"],
        "wrglob.b",
    );
}

#[test]
fn pattern_const_tree_fires() {
    check_list_pattern("b = 9;", "wrtree.c");
}

#[test]
fn pattern_const_glob_fires() {
    check_pattern(
        &list_program("global int G = 0;", "G = 4;"),
        "N",
        &["go"],
        "wrglob.c",
    );
}

#[test]
fn pattern_const_loc_fires() {
    check_list_pattern("int t = 5; b = t + p;", "stloc.c");
}

#[test]
fn pattern_loc_tree_fires() {
    check_list_pattern("b = p;", "wrtree.l");
}

#[test]
fn pattern_loc_glob_fires() {
    check_pattern(
        &list_program("global int G = 0;", "G = p;"),
        "N",
        &["go"],
        "wrglob.l",
    );
}

#[test]
fn pattern_loc_loc_fires() {
    check_list_pattern("int t = p; b = t + a;", "stloc.l");
}

#[test]
fn pattern_tree_tree_fires() {
    check_list_pattern("b = a;", "cptree");
}

#[test]
fn pattern_nav_call_fires() {
    // Argument-less recursion: Nav + Call fuses.
    check_pattern(
        r#"
        tree class N {
            child N* next;
            int a = 1; int b = 2;
            virtual traversal go() {}
        }
        tree class C : N {
            traversal go() { b = a + b; this->next->go(); }
        }
        tree class E : N { }
    "#,
        "N",
        &["go"],
        "navcall",
    );
}

#[test]
fn pattern_call_mono_fires() {
    // A call *with* an argument through a single-class child hierarchy:
    // Nav and Call are separated by argument evaluation, so the mono pass
    // devirtualises the remaining polymorphic Call.
    check_pattern(
        r#"
        tree class K {
            int sum = 0;
            traversal absorb(int v) { sum = sum + v; }
        }
        tree class N {
            child N* next;
            child K* k;
            int a = 1; int b = 2;
            virtual traversal go(int p) {}
        }
        tree class C : N {
            traversal go(int p) {
                this->k->absorb(p);
                this->next->go(p);
            }
        }
        tree class E : N { }
    "#,
        "N",
        &["go"],
        "call.m",
    );
}

#[test]
fn pattern_folded_const_fires() {
    check_list_pattern("b = 2 + 3 * 4;", "fconst");
}

#[test]
fn folding_preserves_division_by_zero_semantics() {
    // The kernel defines int division by zero as 0; folding must agree.
    check_list_pattern("b = 7 / 0 + p;", "fconst");
}

// ---- structural checks ----------------------------------------------------

#[test]
fn lower_with_levels_are_ordered_and_reported() {
    let src = list_program("", "b = a + 1; if (a == 1) { b = 0; }");
    let compiled = grafter::pipeline::Compiled::compile(&src).unwrap();
    let fused = grafter::fuse(
        compiled.program(),
        "N",
        &["go"],
        &grafter::FuseOptions::default(),
    )
    .unwrap();
    let o0 = lower_with(&fused, &VmOptions::with_opt_level(OptLevel::O0));
    let o1 = lower_with(&fused, &VmOptions::with_opt_level(OptLevel::O1));
    let o2 = lower_with(&fused, &VmOptions::with_opt_level(OptLevel::O2));
    assert!(o0.opt_report().passes.is_empty(), "O0 runs no passes");
    assert_eq!(o0.opt_report().level, OptLevel::O0);
    assert_eq!(o1.opt_report().level, OptLevel::O1);
    assert_eq!(o2.opt_report().level, OptLevel::O2);
    assert!(o1.n_ops() < o0.n_ops(), "O1 peephole shrinks the module");
    assert!(o2.n_ops() <= o1.n_ops(), "O2 never grows the module");
    assert!(o2.opt_report().total_rewrites() >= o1.opt_report().total_rewrites());
    // The disassembly carries the per-pass deltas.
    let disasm = o2.disassemble();
    assert!(disasm.contains("; opt: O2"));
    assert!(disasm.contains("peephole"));
}

#[test]
fn empty_module_is_detected() {
    // `fuse_slots` with a slot from a disjoint hierarchy resolves on no
    // concrete subtype of the root: the lowered module has no functions.
    // (`grafterc --emit bytecode` warns on exactly this predicate.)
    let src = r#"
        tree class A { int x = 0; virtual traversal fa() {} }
        tree class B { int y = 0; virtual traversal fb() {} }
    "#;
    let compiled = grafter::pipeline::Compiled::compile(src).unwrap();
    let program = compiled.program();
    let a = (0..program.classes.len() as u32)
        .map(grafter_frontend::ClassId)
        .find(|c| program.classes[c.index()].name == "A")
        .unwrap();
    let fb = program
        .method_on_class(
            (0..program.classes.len() as u32)
                .map(grafter_frontend::ClassId)
                .find(|c| program.classes[c.index()].name == "B")
                .unwrap(),
            "fb",
        )
        .unwrap();
    let fused = grafter::fuse_slots(program, a, &[fb], &grafter::FuseOptions::default());
    let module = grafter_vm::lower(&fused);
    assert!(
        module.is_empty(),
        "cross-hierarchy slot yields an empty module"
    );
    let normal = grafter::fuse_slots(
        program,
        a,
        &[program.method_on_class(a, "fa").unwrap()],
        &grafter::FuseOptions::default(),
    );
    assert!(!grafter_vm::lower(&normal).is_empty());
}

#[test]
fn folding_preserves_wrapping_negation_at_i64_min() {
    // `-(i64::MIN)` must be deterministic (wrapping) in every build
    // profile and identical across interp / O0 / O2: all three evaluate
    // through the shared `grafter_runtime::ops::unop` kernel, and the
    // folder only ever folds what that kernel computes.
    check_list_pattern("b = -(0 - 9223372036854775807 - 1) + p;", "fconst");
}
