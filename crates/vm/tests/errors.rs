//! Runtime error parity: the VM must surface every [`RuntimeError`]
//! variant through the same `DiagnosticBag` `Stage::Runtime` path as the
//! interpreter — one test per variant, each asserting both backends
//! produce the identical diagnostic.

use grafter::{Compiled, DiagnosticBag, Stage};
use grafter_engine::Engine;
use grafter_runtime::{Heap, NodeId, Value};
use grafter_vm::Backend;

/// Runs both backends on identical fresh trees and returns the two
/// diagnostic bags (both runs must fail).
fn both_fail(
    compiled: &Compiled,
    passes: &[&str],
    build: &dyn Fn(&mut Heap) -> NodeId,
) -> (DiagnosticBag, DiagnosticBag) {
    let run = |backend: Backend| {
        let engine = Engine::builder()
            .compiled(compiled.clone())
            .entry("Node", passes)
            .backend(backend)
            .build()
            .unwrap();
        let mut session = engine.session();
        let root = session.build_tree(build);
        session.run(root).expect_err("run must fail").into_bag()
    };
    (run(Backend::Interp), run(Backend::Vm))
}

fn assert_runtime_diag(bag: &DiagnosticBag, needle: &str) {
    assert!(bag.has_errors(), "{bag}");
    assert_eq!(bag[0].stage, Stage::Runtime, "{bag}");
    assert!(
        bag[0].message.contains(needle),
        "expected `{needle}` in `{}`",
        bag[0].message
    );
}

#[test]
fn null_deref_surfaces_identically() {
    // `Next.Width` reads through a null child pointer.
    let src = r#"
        tree class Node {
            child Node* next;
            int w = 0;
            virtual traversal sum() {}
        }
        tree class Cons : Node {
            traversal sum() {
                this->next->sum();
                w = next.w + 1;
            }
        }
        tree class End : Node { }
    "#;
    let compiled = Compiled::compile(src).unwrap();
    let build = |heap: &mut Heap| heap.alloc_by_name("Cons").unwrap();
    let (interp, vm) = both_fail(&compiled, &["sum"], &build);
    assert_runtime_diag(&vm, "null child dereferenced");
    assert_eq!(interp[0].message, vm[0].message);
}

#[test]
fn missing_pure_surfaces_identically() {
    let src = r#"
        pure int mystery(int x);
        tree class Node {
            child Node* next;
            int v = 0;
            virtual traversal go() {}
        }
        tree class Cons : Node {
            traversal go() { v = mystery(v); this->next->go(); }
        }
        tree class End : Node { }
    "#;
    let compiled = Compiled::compile(src).unwrap();
    let build = |heap: &mut Heap| {
        let end = heap.alloc_by_name("End").unwrap();
        let c = heap.alloc_by_name("Cons").unwrap();
        heap.set_child_by_name(c, "next", Some(end)).unwrap();
        c
    };
    let (interp, vm) = both_fail(&compiled, &["go"], &build);
    assert_runtime_diag(&vm, "pure function `mystery` has no native implementation");
    assert_eq!(interp[0].message, vm[0].message);
}

#[test]
fn missing_target_surfaces_identically() {
    // `Stray` lives in a disjoint hierarchy: the entry stub's jump table
    // has no row for it, so dispatching on a Stray root fails.
    let src = r#"
        tree class Node {
            child Node* next;
            int a = 0;
            virtual traversal go() {}
        }
        tree class Cons : Node {
            traversal go() { a = a + 1; this->next->go(); }
        }
        tree class End : Node { }
        tree class Stray {
            int b = 0;
            virtual traversal other() {}
        }
    "#;
    let compiled = Compiled::compile(src).unwrap();
    let build = |heap: &mut Heap| heap.alloc_by_name("Stray").unwrap();
    let (interp, vm) = both_fail(&compiled, &["go"], &build);
    assert_runtime_diag(&vm, "no fused function for dynamic type `Stray`");
    assert_eq!(interp[0].message, vm[0].message);
}

#[test]
fn not_a_ref_surfaces_identically() {
    // Heap corruption: a child slot overwritten with an integer.
    let src = r#"
        tree class Node {
            child Node* next;
            int a = 0;
            virtual traversal go() {}
        }
        tree class Cons : Node {
            traversal go() { a = a + 1; this->next->go(); }
        }
        tree class End : Node { }
    "#;
    let compiled = Compiled::compile(src).unwrap();
    let build = |heap: &mut Heap| {
        let c = heap.alloc_by_name("Cons").unwrap();
        heap.set_by_name(c, "next", Value::Int(7)).unwrap();
        c
    };
    let (interp, vm) = both_fail(&compiled, &["go"], &build);
    assert_runtime_diag(&vm, "child slot does not hold a reference");
    assert_eq!(interp[0].message, vm[0].message);
}
