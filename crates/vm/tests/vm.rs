//! VM integration tests: differential interp-vs-VM execution on small
//! programs covering every statement/expression form, plus disassembly
//! and API surface checks.

use grafter::{fuse, Compiled, FuseOptions, Fused};
use grafter_cachesim::CacheHierarchy;
use grafter_engine::Engine;
use grafter_frontend::compile;
use grafter_runtime::{Heap, Interp, Metrics, NodeId, SnapValue, Value};
use grafter_vm::{lower, Backend, Vm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FIG2: &str = r#"
    global int CHAR_WIDTH = 8;
    struct String { int Length; }
    struct BorderInfo { int Size; }
    tree class Element {
        child Element* Next;
        int Height = 0; int Width = 0;
        int MaxHeight = 0; int TotalWidth = 0;
        virtual traversal computeWidth() {}
        virtual traversal computeHeight() {}
    }
    tree class TextBox : public Element {
        String Text;
        traversal computeWidth() {
            Next->computeWidth();
            Width = Text.Length;
            TotalWidth = Next.Width + Width;
        }
        traversal computeHeight() {
            Next->computeHeight();
            Height = Text.Length * (Width / CHAR_WIDTH) + 1;
            MaxHeight = Height;
            if (Next.Height > Height) { MaxHeight = Next.Height; }
        }
    }
    tree class Group : public Element {
        child Element* Content;
        BorderInfo Border;
        traversal computeWidth() {
            Content->computeWidth();
            Next->computeWidth();
            Width = Content.Width + Border.Size * 2;
            TotalWidth = Width + Next.Width;
        }
        traversal computeHeight() {
            Content->computeHeight();
            Next->computeHeight();
            Height = Content.MaxHeight + Border.Size * 2;
            MaxHeight = Height;
            if (Next.Height > Height) { MaxHeight = Next.Height; }
        }
    }
    tree class End : public Element { }
"#;

fn build_random_elements(heap: &mut Heap, rng: &mut StdRng, depth: usize, length: usize) -> NodeId {
    let end = heap.alloc_by_name("End").unwrap();
    let mut next = end;
    for _ in 0..length {
        let node = if depth > 0 && rng.gen_bool(0.3) {
            let g = heap.alloc_by_name("Group").unwrap();
            heap.set_by_name(g, "Border.Size", Value::Int(rng.gen_range(0..4)))
                .unwrap();
            let len = rng.gen_range(1..4);
            let inner = build_random_elements(heap, rng, depth - 1, len);
            heap.set_child_by_name(g, "Content", Some(inner)).unwrap();
            g
        } else {
            let t = heap.alloc_by_name("TextBox").unwrap();
            heap.set_by_name(t, "Text.Length", Value::Int(rng.gen_range(1..80)))
                .unwrap();
            t
        };
        heap.set_child_by_name(node, "Next", Some(next)).unwrap();
        next = node;
    }
    next
}

type Snapshot = Vec<(String, Vec<SnapValue>)>;

/// Runs both backends on identical fresh trees; returns the two
/// `(snapshot, metrics)` pairs.
fn differential(
    fused: &Fused,
    args: &[Vec<Value>],
    build: &dyn Fn(&mut Heap) -> NodeId,
) -> ((Snapshot, Metrics), (Snapshot, Metrics)) {
    let fp = fused.fused_program();
    let mut h1 = Heap::new(fused.program());
    let r1 = build(&mut h1);
    let mut interp = Interp::new(fp);
    interp.run(&mut h1, r1, args).expect("interp run succeeds");

    let module = lower(fp);
    let mut h2 = Heap::new(fused.program());
    let r2 = build(&mut h2);
    let mut vm = Vm::new(&module);
    vm.run(&mut h2, r2, args).expect("vm run succeeds");

    (
        (h1.snapshot(r1), interp.metrics.clone()),
        (h2.snapshot(r2), vm.metrics.clone()),
    )
}

#[test]
fn fig2_fused_and_unfused_match_interp_bit_for_bit() {
    let compiled = Compiled::compile(FIG2).unwrap();
    let traversals = ["computeWidth", "computeHeight"];
    for artifact in [
        compiled.fuse_default("Element", &traversals).unwrap(),
        compiled.fuse_unfused("Element", &traversals).unwrap(),
    ] {
        for seed in 0..10u64 {
            let build = move |heap: &mut Heap| {
                let mut rng = StdRng::seed_from_u64(seed);
                build_random_elements(heap, &mut rng, 3, 8)
            };
            let ((snap_i, m_i), (snap_v, m_v)) = differential(&artifact, &[], &build);
            assert_eq!(snap_i, snap_v, "seed {seed}: heap states diverge");
            assert_eq!(m_i, m_v, "seed {seed}: metrics diverge");
        }
    }
}

#[test]
fn truncation_via_return_matches_interp() {
    let src = r#"
        tree class Node {
            child Node* next;
            bool stop = false;
            int a = 0; int b = 0;
            virtual traversal markA() {}
            virtual traversal markB() {}
        }
        tree class Cons : Node {
            traversal markA() {
                if (stop) { return; }
                a = a + 1;
                this->next->markA();
            }
            traversal markB() {
                b = b + 1;
                this->next->markB();
            }
        }
        tree class End : Node { }
    "#;
    let compiled = Compiled::compile(src).unwrap();
    let fused = compiled.fuse_default("Node", &["markA", "markB"]).unwrap();
    for seed in 0..10u64 {
        let build = move |heap: &mut Heap| {
            let mut rng = StdRng::seed_from_u64(seed);
            let end = heap.alloc_by_name("End").unwrap();
            let mut next = end;
            for _ in 0..20 {
                let c = heap.alloc_by_name("Cons").unwrap();
                heap.set_by_name(c, "stop", Value::Bool(rng.gen_bool(0.2)))
                    .unwrap();
                heap.set_child_by_name(c, "next", Some(next)).unwrap();
                next = c;
            }
            next
        };
        let ((snap_i, m_i), (snap_v, m_v)) = differential(&fused, &[], &build);
        assert_eq!(snap_i, snap_v, "seed {seed}");
        assert_eq!(m_i, m_v, "seed {seed}");
    }
}

#[test]
fn tree_mutation_new_delete_matches_interp() {
    let src = r#"
        tree class Node {
            child Node* next;
            int kind = 0;
            int count = 0;
            virtual traversal desugar() {}
            virtual traversal tally() {}
        }
        tree class Cons : Node {
            child Leaf* payload;
            traversal desugar() {
                if (kind == 1) {
                    delete this->payload;
                    this->payload = new Leaf();
                    kind = 2;
                }
                this->next->desugar();
            }
            traversal tally() {
                count = kind;
                this->next->tally();
            }
        }
        tree class Leaf : Node { int v = 0; }
        tree class End : Node { }
    "#;
    let compiled = Compiled::compile(src).unwrap();
    let fused = compiled
        .fuse_default("Node", &["desugar", "tally"])
        .unwrap();
    let build = |heap: &mut Heap| {
        let mut rng = StdRng::seed_from_u64(42);
        let end = heap.alloc_by_name("End").unwrap();
        let mut next = end;
        for _ in 0..30 {
            let c = heap.alloc_by_name("Cons").unwrap();
            heap.set_by_name(c, "kind", Value::Int(rng.gen_range(0..3)))
                .unwrap();
            let leaf = heap.alloc_by_name("Leaf").unwrap();
            heap.set_by_name(leaf, "v", Value::Int(rng.gen_range(0..100)))
                .unwrap();
            heap.set_child_by_name(c, "payload", Some(leaf)).unwrap();
            heap.set_child_by_name(c, "next", Some(next)).unwrap();
            next = c;
        }
        next
    };
    let ((snap_i, m_i), (snap_v, m_v)) = differential(&fused, &[], &build);
    assert_eq!(snap_i, snap_v);
    assert_eq!(m_i, m_v);
}

#[test]
fn traversal_parameters_match_interp() {
    let src = r#"
        tree class Node {
            child Node* next;
            int a = 0; int b = 0;
            virtual traversal addA(int delta) {}
            virtual traversal addB(int delta) {}
        }
        tree class Cons : Node {
            traversal addA(int delta) {
                a = a + delta;
                this->next->addA(delta + 1);
            }
            traversal addB(int delta) {
                b = b + delta;
                this->next->addB(delta * 2);
            }
        }
        tree class End : Node { }
    "#;
    let compiled = Compiled::compile(src).unwrap();
    let fused = compiled.fuse_default("Node", &["addA", "addB"]).unwrap();
    let build = |heap: &mut Heap| {
        let end = heap.alloc_by_name("End").unwrap();
        let mut next = end;
        for _ in 0..10 {
            let c = heap.alloc_by_name("Cons").unwrap();
            heap.set_child_by_name(c, "next", Some(next)).unwrap();
            next = c;
        }
        next
    };
    let args = vec![vec![Value::Int(5)], vec![Value::Int(3)]];
    let ((snap_i, m_i), (snap_v, m_v)) = differential(&fused, &args, &build);
    assert_eq!(snap_i, snap_v);
    assert_eq!(m_i, m_v);
}

#[test]
fn cache_traffic_is_identical_to_interp() {
    let program = compile(FIG2).unwrap();
    let fused = fuse(
        &program,
        "Element",
        &["computeWidth", "computeHeight"],
        &FuseOptions::default(),
    )
    .unwrap();
    let build = |heap: &mut Heap| {
        let mut rng = StdRng::seed_from_u64(9);
        build_random_elements(heap, &mut rng, 3, 40)
    };

    let mut h1 = Heap::new(&program);
    let r1 = build(&mut h1);
    let mut interp = Interp::new(&fused).with_cache(CacheHierarchy::xeon());
    interp.run(&mut h1, r1, &[]).unwrap();
    let s_i = interp.cache.as_ref().unwrap().stats();

    let module = lower(&fused);
    let mut h2 = Heap::new(&program);
    let r2 = build(&mut h2);
    let mut vm = Vm::new(&module).with_cache(CacheHierarchy::xeon());
    vm.run(&mut h2, r2, &[]).unwrap();
    let s_v = vm.cache.as_ref().unwrap().stats();

    for level in 0..3 {
        assert_eq!(
            s_i.misses(level),
            s_v.misses(level),
            "L{} misses diverge",
            level + 1
        );
    }
    assert_eq!(s_i.cycles, s_v.cycles);
}

#[test]
fn globals_are_readable_and_settable_on_the_vm() {
    let program = compile(FIG2).unwrap();
    let fused = fuse(
        &program,
        "Element",
        &["computeWidth", "computeHeight"],
        &FuseOptions::default(),
    )
    .unwrap();
    let module = lower(&fused);
    let mut vm = Vm::new(&module);
    assert_eq!(vm.global("CHAR_WIDTH"), Some(Value::Int(8)));
    vm.set_global("CHAR_WIDTH", Value::Int(4)).unwrap();
    assert_eq!(vm.global("CHAR_WIDTH"), Some(Value::Int(4)));

    let mut heap = Heap::new(&program);
    let end = heap.alloc_by_name("End").unwrap();
    let t = heap.alloc_by_name("TextBox").unwrap();
    heap.set_by_name(t, "Text.Length", Value::Int(8)).unwrap();
    heap.set_child_by_name(t, "Next", Some(end)).unwrap();
    vm.run(&mut heap, t, &[]).unwrap();
    // Height = 8*(8/4)+1 = 17 with the overridden CHAR_WIDTH.
    assert_eq!(heap.get_by_name(t, "Height").unwrap(), Value::Int(17));
}

#[test]
fn backend_selection_through_the_engine() {
    let compiled = Compiled::compile(FIG2).unwrap();
    let run = |backend: Backend| {
        let engine = Engine::builder()
            .compiled(compiled.clone())
            .entry("Element", &["computeWidth", "computeHeight"])
            .backend(backend)
            .build()
            .unwrap();
        let mut session = engine.session();
        let root = session.build_tree(|heap| {
            let end = heap.alloc_by_name("End").unwrap();
            let t = heap.alloc_by_name("TextBox").unwrap();
            heap.set_by_name(t, "Text.Length", Value::Int(16)).unwrap();
            heap.set_child_by_name(t, "Next", Some(end)).unwrap();
            t
        });
        let report = session.run(root).unwrap();
        (session.snapshot(root), report.metrics)
    };
    let (snap_i, m_interp) = run(Backend::Interp);
    let (snap_v, m_vm) = run(Backend::Vm);
    assert_eq!(m_interp, m_vm);
    assert_eq!(snap_i, snap_v);
}

#[test]
fn disassembly_names_functions_stubs_and_tables() {
    let compiled = Compiled::compile(FIG2).unwrap();
    let fused = compiled
        .fuse_default("Element", &["computeWidth", "computeHeight"])
        .unwrap();
    let module = lower(fused.fused_program());
    let asm = module.disassemble();
    assert!(asm.contains("grafter-vm module"), "{asm}");
    assert!(asm.contains("fn 0"), "{asm}");
    assert!(asm.contains("__stub0"), "{asm}");
    assert!(asm.contains("TextBox"), "disasm lists jump-table classes");
    assert!(asm.contains("guard"), "fused code carries guards");
    assert!(asm.contains("call"), "grouped calls are lowered");
    assert!(module.n_ops() > 0);
    assert!(module.n_functions() > 0);
    assert!(module.n_stubs() > 0);
}

#[test]
fn pure_calls_flow_through_the_vm() {
    let src = r#"
        pure float sqrtf(float x);
        tree class Node {
            child Node* next;
            float v = 0.0;
            virtual traversal root() {}
        }
        tree class Cons : Node {
            traversal root() { v = sqrtf(v); this->next->root(); }
        }
        tree class End : Node { }
    "#;
    let compiled = Compiled::compile(src).unwrap();
    let fused = compiled.fuse_default("Node", &["root"]).unwrap();
    let build = |heap: &mut Heap| {
        let end = heap.alloc_by_name("End").unwrap();
        let c = heap.alloc_by_name("Cons").unwrap();
        heap.set_by_name(c, "v", Value::Float(9.0)).unwrap();
        heap.set_child_by_name(c, "next", Some(end)).unwrap();
        c
    };
    let ((snap_i, m_i), (snap_v, m_v)) = differential(&fused, &[], &build);
    assert_eq!(snap_i, snap_v);
    assert_eq!(m_i, m_v);
    assert_eq!(snap_v[0].1[1], SnapValue::Float(3.0));
}
