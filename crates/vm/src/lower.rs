//! Lowering: compiles a [`FusedProgram`] into a flat bytecode [`Module`].
//!
//! This is the compile-once step that removes every per-visit lookup the
//! tree-walking interpreter performs:
//!
//! - each fused function's scheduled body flattens into one contiguous op
//!   range with resolved jump targets (guards, `if` branches, short
//!   circuits, per-traversal `return`s);
//! - locals get frame-relative **registers** (traversal frames
//!   concatenated, parameters first, struct locals flattened), and
//!   expressions compile to a register window above the locals;
//! - every data access resolves its member chain to a constant slot
//!   addend, every global to a flat frame index, and the `class × field`
//!   slot table is densified so dynamic-type navigation is two array
//!   indexes;
//! - each dispatch stub becomes a jump table indexed by dynamic class id;
//! - literals are interned into a deduplicated constant pool.
//!
//! The lowering mirrors the interpreter's cost accounting exactly: ops
//! charge the same [`grafter_runtime::cost`] constants at the same
//! execution points, so `Metrics` (and simulated cache traffic) of the two
//! backends are bit-identical — see `tests/vm_differential.rs`.

use std::collections::HashMap;

use grafter::{CallPart, FusedProgram, ScheduledItem, StubId};
use grafter_frontend::{
    BinOp, DataAccess, Expr, GlobalId, LocalId, MethodId, NodePath, Program, Stmt, Ty,
};
use grafter_runtime::ops::{field_ty, flatten_globals, local_frame_layout};
use grafter_runtime::{Layouts, Value};

use crate::module::{CallInfo, CallPartInfo, Co, FuncInfo, Module, Op, StubInfo, NO_TARGET};
use crate::opt::{optimize, OptReport, VmOptions};

/// Process-wide count of [`lower`] invocations.
///
/// Lowering is the expensive compile-once step of the VM tier; callers
/// that promise "compile once, run many" (the `Engine` API) assert
/// against this counter in tests.
static LOWERINGS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Number of times [`lower`] has run in this process.
pub fn lowering_count() -> u64 {
    LOWERINGS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Lowers a fused program into an executable bytecode [`Module`] with
/// the default [`VmOptions`] (full optimization, [`crate::OptLevel::O2`]).
pub fn lower(fp: &FusedProgram) -> Module {
    lower_with(fp, &VmOptions::default())
}

/// Lowers a fused program and optimizes the module per `opts`.
///
/// Whatever the level, the module's observable behaviour — heap effects,
/// [`grafter_runtime::Metrics`], simulated cache traffic, runtime errors
/// — is bit-identical to `O0` and to the interpreter; optimization only
/// sheds dispatch overhead (see [`crate::opt`]).
pub fn lower_with(fp: &FusedProgram, opts: &VmOptions) -> Module {
    LOWERINGS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let program = &fp.program;
    let layouts = Layouts::new(program);

    // Dense class × field slot table (u32::MAX where the field is absent).
    let n_fields = program.fields.len();
    let n_classes = program.classes.len();
    let mut field_offsets = vec![u32::MAX; n_classes * n_fields];
    let mut node_bytes = Vec::with_capacity(n_classes);
    for ci in 0..n_classes {
        let class = grafter_frontend::ClassId(ci as u32);
        for f in program.all_fields(class) {
            field_offsets[ci * n_fields + f.index()] = layouts.slot_of(class, f) as u32;
        }
        node_bytes.push(layouts.node_bytes(class));
    }

    // Flattened global frame — the same shared layout the interpreter
    // builds its global vector from, so indices correspond by
    // construction.
    let (globals_init, offsets) = flatten_globals(program);
    let global_offsets: Vec<u32> = offsets.iter().map(|&o| o as u32).collect();
    let global_names = program
        .globals
        .iter()
        .zip(&global_offsets)
        .map(|(g, &o)| (g.name.clone(), o))
        .collect();

    let mut lo = Lowerer {
        program,
        layouts: &layouts,
        global_offsets,
        ops: Vec::new(),
        consts: Vec::new(),
        const_keys: HashMap::new(),
        paths: Vec::new(),
        path_keys: HashMap::new(),
        calls: Vec::new(),
        local_layouts: HashMap::new(),
        frame_bases: Vec::new(),
        scratch_base: 0,
        max_reg: 0,
        multi: false,
        item_fixups: Vec::new(),
    };

    let mut funcs = Vec::with_capacity(fp.functions.len());
    for f in &fp.functions {
        funcs.push(lo.lower_fn(f));
    }

    let stubs = fp
        .stubs
        .iter()
        .map(|s| {
            let mut targets = vec![NO_TARGET; n_classes];
            for &(class, fid) in &s.targets {
                targets[class.index()] = fid.0;
            }
            StubInfo {
                n_parts: s.slots.len() as u8,
                targets: targets.into_boxed_slice(),
                name: s.name.clone(),
            }
        })
        .collect();

    let mut module = Module {
        ops: lo.ops,
        funcs,
        stubs,
        calls: lo.calls,
        consts: lo.consts,
        paths: lo.paths,
        field_offsets,
        n_fields,
        node_bytes,
        globals_init,
        global_names,
        pure_names: program.pures.iter().map(|p| p.name.clone()).collect(),
        class_names: program.classes.iter().map(|c| c.name.clone()).collect(),
        field_names: program.fields.iter().map(|f| f.name.clone()).collect(),
        entries: fp.entries.iter().map(|&StubId(i)| i as u16).collect(),
        opt: OptReport::none(),
    };
    module.opt = optimize(&mut module, opts.opt_level);
    module
}

/// Coercion tag of a declared type.
fn co_of(ty: Ty) -> Co {
    match ty {
        Ty::Int => Co::Int,
        Ty::Float => Co::Float,
        _ => Co::No,
    }
}

/// Jump-target placeholder patched once the target pc is known.
const PENDING: u32 = u32::MAX;

struct Lowerer<'p> {
    program: &'p Program,
    layouts: &'p Layouts,
    global_offsets: Vec<u32>,
    ops: Vec<Op>,
    consts: Vec<Value>,
    const_keys: HashMap<(u8, u64), u16>,
    paths: Vec<Box<[u32]>>,
    path_keys: HashMap<Vec<u32>, u16>,
    calls: Vec<CallInfo>,
    /// Per-method local frame layout: slot offset of each local, total size.
    local_layouts: HashMap<MethodId, (Vec<usize>, usize)>,
    /// Per-traversal first register of the current function's frames.
    frame_bases: Vec<u16>,
    scratch_base: u16,
    max_reg: u16,
    multi: bool,
    /// Ops whose jump target is the end of the current scheduled item.
    item_fixups: Vec<usize>,
}

impl Lowerer<'_> {
    // ---- pools -----------------------------------------------------------

    fn intern_const(&mut self, v: Value) -> u16 {
        let key = match v {
            Value::Int(i) => (0u8, i as u64),
            Value::Float(f) => (1, f.to_bits()),
            Value::Bool(b) => (2, b as u64),
            Value::Ref(_) => unreachable!("no ref literals"),
        };
        if let Some(&i) = self.const_keys.get(&key) {
            return i;
        }
        let i = self.consts.len() as u16;
        self.consts.push(v);
        self.const_keys.insert(key, i);
        i
    }

    fn intern_path(&mut self, fields: &[u32]) -> u16 {
        if let Some(&i) = self.path_keys.get(fields) {
            return i;
        }
        let i = self.paths.len() as u16;
        self.paths.push(fields.to_vec().into_boxed_slice());
        self.path_keys.insert(fields.to_vec(), i);
        i
    }

    fn node_path(&mut self, path: &NodePath) -> u16 {
        let fields: Vec<u32> = path.fields().map(|f| f.0).collect();
        self.intern_path(&fields)
    }

    // ---- emission helpers ------------------------------------------------

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump { target: t }
            | Op::Branch { target: t, .. }
            | Op::ShortCircuit { target: t, .. }
            | Op::Guard { target: t, .. }
            | Op::SkipInactive { target: t, .. }
            | Op::Deactivate { target: t, .. }
            | Op::Nav { null_target: t, .. } => *t = target,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    fn note(&mut self, reg: u16) {
        self.max_reg = self.max_reg.max(reg);
    }

    // ---- frame layout ----------------------------------------------------

    fn local_layout(&mut self, method: MethodId) -> (Vec<usize>, usize) {
        if let Some(l) = self.local_layouts.get(&method) {
            return l.clone();
        }
        let layout = local_frame_layout(self.program, method);
        self.local_layouts.insert(method, layout.clone());
        layout
    }

    fn local_reg(
        &mut self,
        seq: &[MethodId],
        traversal: usize,
        local: LocalId,
        members: &[grafter_frontend::FieldId],
    ) -> u16 {
        let (offsets, _) = self.local_layout(seq[traversal]);
        let mut slot = offsets[local.index()];
        for m in members {
            slot += self.layouts.member_offset(*m);
        }
        self.frame_bases[traversal] + slot as u16
    }

    fn global_idx(&self, global: GlobalId, members: &[grafter_frontend::FieldId]) -> u16 {
        let mut idx = self.global_offsets[global.index()] as usize;
        for m in members {
            idx += self.layouts.member_offset(*m);
        }
        idx as u16
    }

    /// The static slot addend of a data chain's member suffix.
    fn chain_addend(&self, chain: &[grafter_frontend::FieldId]) -> u16 {
        chain[1..]
            .iter()
            .map(|m| self.layouts.member_offset(*m))
            .sum::<usize>() as u16
    }

    // ---- function lowering -----------------------------------------------

    fn lower_fn(&mut self, f: &grafter::FusedFn) -> FuncInfo {
        let seq = &f.seq;
        self.multi = seq.len() > 1;
        self.frame_bases.clear();
        let mut cur = 0u16;
        let mut params: Vec<Box<[u16]>> = Vec::with_capacity(seq.len());
        for &m in seq {
            self.frame_bases.push(cur);
            let (offsets, size) = self.local_layout(m);
            let method = &self.program.methods[m.index()];
            params.push(
                offsets
                    .iter()
                    .take(method.n_params)
                    .map(|&o| cur + o as u16)
                    .collect(),
            );
            cur += size as u16;
        }
        let frame_regs = cur;
        self.scratch_base = frame_regs;
        self.max_reg = frame_regs;
        let entry = self.here();

        for item in &f.body {
            self.item_fixups.clear();
            match item {
                ScheduledItem::Stmt { traversal, stmt } => {
                    if self.multi {
                        let g = self.emit(Op::Guard {
                            mask: 1u64 << traversal,
                            target: PENDING,
                        });
                        self.item_fixups.push(g);
                    }
                    self.stmt(seq, *traversal, stmt);
                }
                ScheduledItem::Call {
                    receiver,
                    stub,
                    parts,
                } => {
                    self.call_item(seq, receiver, *stub, parts);
                }
            }
            let end = self.here();
            let fixups = std::mem::take(&mut self.item_fixups);
            for at in fixups {
                self.patch(at, end);
            }
        }
        self.emit(Op::Ret);

        FuncInfo {
            entry,
            end: self.here(),
            n_traversals: seq.len() as u8,
            frame_regs,
            total_regs: self.max_reg + 1,
            params: params.into_boxed_slice(),
            name: f.name.clone(),
        }
    }

    fn call_item(
        &mut self,
        seq: &[MethodId],
        receiver: &NodePath,
        stub: StubId,
        parts: &[CallPart],
    ) {
        if self.multi {
            let mask = parts.iter().fold(0u64, |m, p| m | (1u64 << p.traversal));
            let g = self.emit(Op::Guard {
                mask,
                target: PENDING,
            });
            self.item_fixups.push(g);
        }
        let child = self.scratch_base;
        self.note(child);
        let path = self.node_path(receiver);
        let nav = self.emit(Op::Nav {
            dst: child,
            path,
            null_target: PENDING,
        });
        self.item_fixups.push(nav);

        let argbase = child + 1;
        let zero = self.intern_const(Value::Int(0));
        let mut rel = 0u16;
        let mut infos = Vec::with_capacity(parts.len());
        for part in parts {
            let pbase = argbase + rel;
            infos.push(CallPartInfo {
                traversal: part.traversal as u8,
                argbase: rel,
                nargs: part.args.len() as u8,
            });
            if part.args.is_empty() {
                // Nothing to evaluate or zero-fill.
            } else if self.multi {
                // Truncated traversal: skip evaluation, pass unobservable
                // zero placeholders (exactly the interpreter's behaviour).
                let skip = self.emit(Op::SkipInactive {
                    traversal: part.traversal as u8,
                    target: PENDING,
                });
                for (k, a) in part.args.iter().enumerate() {
                    self.expr(seq, part.traversal, a, pbase + k as u16);
                }
                let over = self.emit(Op::Jump { target: PENDING });
                let skip_to = self.here();
                self.patch(skip, skip_to);
                for k in 0..part.args.len() {
                    self.emit(Op::Const {
                        dst: pbase + k as u16,
                        c: zero,
                    });
                }
                let after = self.here();
                self.patch(over, after);
            } else {
                for (k, a) in part.args.iter().enumerate() {
                    self.expr(seq, part.traversal, a, pbase + k as u16);
                }
            }
            rel += part.args.len() as u16;
            self.note(pbase + part.args.len() as u16);
        }
        let call = self.calls.len() as u16;
        self.calls.push(CallInfo {
            stub: stub.0 as u16,
            charge_flags: self.multi,
            parts: infos.into_boxed_slice(),
        });
        self.emit(Op::Call {
            call,
            child,
            argbase,
        });
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self, seq: &[MethodId], traversal: usize, stmt: &Stmt) {
        let s0 = self.scratch_base;
        match stmt {
            Stmt::Traverse(_) => {
                unreachable!("traversing calls are scheduled as Call items")
            }
            Stmt::Assign { target, value } => {
                self.expr(seq, traversal, value, s0);
                self.write(seq, traversal, target, s0);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(seq, traversal, cond, s0);
                let b = self.emit(Op::Branch {
                    cond: s0,
                    target: PENDING,
                });
                for s in then_branch {
                    self.stmt(seq, traversal, s);
                }
                if else_branch.is_empty() {
                    let here = self.here();
                    self.patch(b, here);
                } else {
                    let over = self.emit(Op::Jump { target: PENDING });
                    let here = self.here();
                    self.patch(b, here);
                    for s in else_branch {
                        self.stmt(seq, traversal, s);
                    }
                    let after = self.here();
                    self.patch(over, after);
                }
            }
            Stmt::LocalDef { local, init } => {
                if let Some(init) = init {
                    self.expr(seq, traversal, init, s0);
                    let ty = self.program.methods[seq[traversal].index()].locals[local.index()].ty;
                    let dst = self.local_reg(seq, traversal, *local, &[]);
                    self.emit(Op::StoreLocal {
                        dst,
                        src: s0,
                        co: co_of(ty),
                    });
                }
            }
            Stmt::New { target, class } => {
                let (path, field) = self.parent_path(target);
                self.emit(Op::New {
                    path,
                    field,
                    class: class.0 as u16,
                });
            }
            Stmt::Delete { target } => {
                let (path, field) = self.parent_path(target);
                self.emit(Op::Delete { path, field });
            }
            Stmt::Return => {
                let d = self.emit(Op::Deactivate {
                    traversal: traversal as u8,
                    target: PENDING,
                });
                self.item_fixups.push(d);
            }
            Stmt::PureStmt { pure, args } => {
                for (k, a) in args.iter().enumerate() {
                    self.expr(seq, traversal, a, s0 + k as u16);
                }
                let sink = s0 + args.len() as u16;
                self.note(sink);
                self.emit(Op::CallPure {
                    dst: sink,
                    pure: pure.0 as u16,
                    base: s0,
                    n: args.len() as u8,
                    co: Co::No,
                });
            }
        }
    }

    /// Splits a topology target into (parent path, final child field).
    fn parent_path(&mut self, target: &NodePath) -> (u16, u32) {
        let last = target
            .steps
            .last()
            .expect("topology targets have a step")
            .field;
        let prefix: Vec<u32> = target.steps[..target.steps.len() - 1]
            .iter()
            .map(|s| s.field.0)
            .collect();
        (self.intern_path(&prefix), last.0)
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self, seq: &[MethodId], traversal: usize, e: &Expr, dst: u16) {
        self.note(dst);
        match e {
            Expr::Int(v) => {
                let c = self.intern_const(Value::Int(*v));
                self.emit(Op::Const { dst, c });
            }
            Expr::Float(v) => {
                let c = self.intern_const(Value::Float(*v));
                self.emit(Op::Const { dst, c });
            }
            Expr::Bool(v) => {
                let c = self.intern_const(Value::Bool(*v));
                self.emit(Op::Const { dst, c });
            }
            Expr::Read(access) => self.read(seq, traversal, access, dst),
            Expr::Unary(op, sub) => {
                self.expr(seq, traversal, sub, dst);
                self.emit(Op::Un {
                    op: *op,
                    dst,
                    src: dst,
                });
            }
            Expr::Binary(op @ (BinOp::And | BinOp::Or), l, r) => {
                self.expr(seq, traversal, l, dst);
                let sc = self.emit(Op::ShortCircuit {
                    reg: dst,
                    jump_if: matches!(op, BinOp::Or),
                    target: PENDING,
                });
                self.expr(seq, traversal, r, dst);
                self.emit(Op::CastBool { reg: dst });
                let after = self.here();
                self.patch(sc, after);
            }
            Expr::Binary(op, l, r) => {
                self.expr(seq, traversal, l, dst);
                self.expr(seq, traversal, r, dst + 1);
                self.note(dst + 1);
                self.emit(Op::Bin {
                    op: *op,
                    dst,
                    a: dst,
                    b: dst + 1,
                });
            }
            Expr::PureCall(pure, args) => {
                for (k, a) in args.iter().enumerate() {
                    self.expr(seq, traversal, a, dst + k as u16);
                }
                self.note(dst + args.len() as u16);
                let decl = &self.program.pures[pure.index()];
                self.emit(Op::CallPure {
                    dst,
                    pure: pure.0 as u16,
                    base: dst,
                    n: args.len() as u8,
                    co: co_of(decl.return_type),
                });
            }
        }
    }

    fn read(&mut self, seq: &[MethodId], traversal: usize, access: &DataAccess, dst: u16) {
        match access {
            DataAccess::OnTree { path, data } => {
                let p = self.node_path(path);
                let addend = self.chain_addend(data);
                self.emit(Op::ReadTree {
                    dst,
                    path: p,
                    field: data[0].0,
                    addend,
                });
            }
            DataAccess::Local { local, members } => {
                let src = self.local_reg(seq, traversal, *local, members);
                self.emit(Op::Mov { dst, src });
            }
            DataAccess::Global { global, members } => {
                let idx = self.global_idx(*global, members);
                self.emit(Op::ReadGlobal { dst, idx });
            }
        }
    }

    fn write(&mut self, seq: &[MethodId], traversal: usize, access: &DataAccess, src: u16) {
        match access {
            DataAccess::OnTree { path, data } => {
                let p = self.node_path(path);
                let addend = self.chain_addend(data);
                let co = co_of(field_ty(self.program, data));
                self.emit(Op::WriteTree {
                    src,
                    path: p,
                    field: data[0].0,
                    addend,
                    co,
                });
            }
            DataAccess::Local { local, members } => {
                let mut ty = self.program.methods[seq[traversal].index()].locals[local.index()].ty;
                for m in members {
                    ty = field_ty(self.program, &[*m]);
                }
                let dst = self.local_reg(seq, traversal, *local, members);
                self.emit(Op::StoreLocal {
                    dst,
                    src,
                    co: co_of(ty),
                });
            }
            DataAccess::Global { global, members } => {
                let mut ty = self.program.globals[global.index()].ty;
                for m in members {
                    ty = field_ty(self.program, &[*m]);
                }
                let idx = self.global_idx(*global, members);
                self.emit(Op::WriteGlobal {
                    src,
                    idx,
                    co: co_of(ty),
                });
            }
        }
    }
}
