//! `grafter-vm`: a bytecode compiler and register VM for fused traversals.
//!
//! The tree-walking interpreter in `grafter-runtime` executes a
//! [`grafter::FusedProgram`] by walking its statement trees, probing
//! layout `HashMap`s on every field access and allocating fresh frame
//! vectors on every node visit — faithful, but dominated by interpretive
//! dispatch overhead. This crate is the compiled execution tier:
//!
//! 1. [`lower`] compiles a fused program **once** into a flat [`Module`]:
//!    registers for locals and expression scratch, resolved field offsets
//!    (dense `class × field` table) instead of name/hash lookups, a jump
//!    table per dispatch stub keyed by the receiver's dynamic type, and
//!    constant-folded operand encoding;
//! 2. the [`opt`] pipeline rewrites the module ([`OptLevel::O2`] by
//!    default, configurable via [`lower_with`]/[`VmOptions`]): constant
//!    folding, peephole fusion of hot adjacent pairs into
//!    superinstructions, dead-register elimination, and
//!    monomorphic-dispatch devirtualisation — all observationally
//!    bit-identical to unoptimized code (same `Metrics`, cache traffic,
//!    errors), just fewer dispatch rounds;
//! 3. [`Vm`] executes the module with a single `match`-dispatch loop over
//!    the contiguous op vector, directly against the existing
//!    [`grafter_runtime::Heap`], producing the same
//!    [`grafter_runtime::Metrics`] and (optionally) feeding the same
//!    [`grafter_cachesim::CacheHierarchy`] as the interpreter —
//!    bit-identical counters, measurably less wall-clock per visit.
//!
//! Backend choice is one builder call away: [`Backend`] on
//! `grafter_engine::Engine::builder().backend(..)` selects the tier, and
//! the engine lowers (and jit-compiles) exactly once at build.
//!
//! # Example
//!
//! ```
//! use grafter::{fuse, Compiled, FuseOptions};
//! use grafter_vm::{lower, Vm};
//! use grafter_runtime::{Heap, Interp};
//!
//! let src = r#"
//!     tree class Node {
//!         child Node* next;
//!         int a = 0; int b = 0;
//!         virtual traversal incA() {}
//!         virtual traversal incB() {}
//!     }
//!     tree class Cons : Node {
//!         traversal incA() { a = a + 1; this->next->incA(); }
//!         traversal incB() { b = b + 1; this->next->incB(); }
//!     }
//!     tree class End : Node { }
//! "#;
//! let compiled = Compiled::compile(src)?;
//! let fused = fuse(compiled.program(), "Node", &["incA", "incB"], &FuseOptions::default())?;
//!
//! // Same tree, one tier apart.
//! let build = |heap: &mut Heap| {
//!     let end = heap.alloc_by_name("End").unwrap();
//!     let cons = heap.alloc_by_name("Cons").unwrap();
//!     heap.set_child_by_name(cons, "next", Some(end)).unwrap();
//!     cons
//! };
//! let mut h1 = Heap::new(compiled.program());
//! let mut h2 = Heap::new(compiled.program());
//! let (r1, r2) = (build(&mut h1), build(&mut h2));
//!
//! let mut interp = Interp::new(&fused);
//! interp.run(&mut h1, r1, &[]).unwrap();
//!
//! let module = lower(&fused);
//! let mut vm = Vm::new(&module);
//! vm.run(&mut h2, r2, &[]).unwrap();
//!
//! assert_eq!(interp.metrics, vm.metrics); // identical metrics, bit for bit
//! assert_eq!(h1.snapshot(r1), h2.snapshot(r2)); // identical trees
//!
//! // The lowered artifact is inspectable (grafterc --emit bytecode).
//! assert!(module.disassemble().contains("fn 0"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod exec;
pub mod jit;
mod lower;
mod module;
pub mod opt;
mod pipeline;

pub use exec::Vm;
pub use jit::{compile_with, Jit, JitMode, JitProgram};
pub use lower::{lower, lower_with, lowering_count};
pub use module::{Co, Module, Op};
pub use opt::{optimize, OptLevel, OptReport, PassStat, VmOptions};
pub use pipeline::Backend;
