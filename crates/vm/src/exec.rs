//! The register-VM execution engine.
//!
//! [`Vm`] executes a lowered [`Module`] against the same
//! [`grafter_runtime::Heap`] the interpreter uses, with a single
//! `match`-dispatch loop over the module's contiguous op vector. One
//! activation = one register window on a shared register stack (no
//! per-call `Vec<Vec<Value>>` frames), dispatch is a jump-table index (no
//! `HashMap` probes), and pure functions are resolved to function pointers
//! once at construction.
//!
//! Cost accounting is bit-compatible with [`grafter_runtime::Interp`]:
//! the same [`cost`] constants are charged at the same execution points
//! and every field access touches the same simulated byte address, so
//! `Metrics` and cache statistics of the two backends are identical on
//! identical inputs.

use grafter_cachesim::CacheHierarchy;
use grafter_frontend::ClassId;
use grafter_obs::{ExecCounters, ExecProbe, NoProbe};
use grafter_runtime::ops::{binop, unop};
use grafter_runtime::{
    cost, Heap, Metrics, NativeFn, NodeId, PureRegistry, RuntimeError, Value, NODE_HEADER_BYTES,
    SLOT_BYTES,
};

use crate::module::{Module, Op, NO_TARGET};

/// Base address of the flattened global frame (identical to the
/// interpreter's, so global accesses hit the same cache lines).
pub(crate) const GLOBALS_BASE_ADDR: u64 = 0x1000;

type RResult<T> = Result<T, RuntimeError>;

/// Executes a lowered [`Module`] against a [`Heap`], collecting
/// [`Metrics`] and (optionally) driving a cache simulator — the VM
/// counterpart of [`grafter_runtime::Interp`].
pub struct Vm<'a> {
    module: &'a Module,
    /// Counters for the current run (reset with [`Metrics::reset`]).
    pub metrics: Metrics,
    /// Optional simulated memory hierarchy fed with every field access.
    pub cache: Option<CacheHierarchy>,
    /// Pure implementations resolved to function pointers by pure id.
    pures: Vec<Option<NativeFn>>,
    /// Flattened global frame.
    globals: Vec<Value>,
    /// Shared register stack; each activation owns one window.
    regs: Vec<Value>,
}

impl<'a> Vm<'a> {
    /// Creates a VM with the default math pures and no cache.
    pub fn new(module: &'a Module) -> Self {
        Vm::with_pures(module, PureRegistry::with_math())
    }

    /// Creates a VM with a custom pure-function registry (resolved to
    /// function pointers once, here).
    pub fn with_pures(module: &'a Module, pures: PureRegistry) -> Self {
        let pures = module
            .pure_names
            .iter()
            .map(|name| pures.get(name))
            .collect();
        Vm {
            module,
            metrics: Metrics::default(),
            cache: None,
            pures,
            globals: module.globals_init.clone(),
            regs: Vec::new(),
        }
    }

    /// Attaches a cache hierarchy (all subsequent accesses are simulated).
    pub fn with_cache(mut self, cache: CacheHierarchy) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets a global variable by name before a run.
    pub fn set_global(&mut self, name: &str, value: Value) -> Option<()> {
        let &(_, idx) = self.module.global_names.iter().find(|(n, _)| n == name)?;
        self.globals[idx as usize] = value;
        Some(())
    }

    /// Reads a global variable by name.
    pub fn global(&self, name: &str) -> Option<Value> {
        let &(_, idx) = self.module.global_names.iter().find(|(n, _)| n == name)?;
        Some(self.globals[idx as usize])
    }

    /// Runs the module's entry sequence on `root`.
    ///
    /// `args[i]` are the arguments of the `i`-th entry traversal, exactly
    /// as for [`grafter_runtime::Interp::run`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if execution dereferences a null child in
    /// a data access, calls an unregistered pure, or dispatch fails.
    pub fn run(&mut self, heap: &mut Heap, root: NodeId, args: &[Vec<Value>]) -> RResult<()> {
        // `NoProbe::ENABLED` is false, so every probe hook below
        // const-folds away: this is the uninstrumented dispatch loop.
        self.run_with(heap, root, args, &mut NoProbe)
    }

    /// Runs the module's entry sequence with a recording probe attached:
    /// `probe` (sized via [`ExecCounters::new`] from [`Module::n_functions`]
    /// and [`Module::n_ops`]) accumulates per-function activation and
    /// per-pc execution counts. `Metrics`, cache traffic and heap effects
    /// are bit-identical to [`Vm::run`] — the probe only adds counter
    /// increments.
    pub fn run_probed(
        &mut self,
        heap: &mut Heap,
        root: NodeId,
        args: &[Vec<Value>],
        probe: &mut ExecCounters,
    ) -> RResult<()> {
        self.run_with(heap, root, args, probe)
    }

    /// Dispatches one stub call — the worker-side entry for executing a
    /// forked subtree ([`grafter_runtime::ForkTask`]) in the VM tier.
    /// Charges exactly what the in-line call would have charged from the
    /// dispatch onward, matching [`grafter_runtime::Interp::run_stub`]
    /// bit for bit.
    ///
    /// # Errors
    ///
    /// As [`Vm::run`].
    pub fn run_stub(
        &mut self,
        heap: &mut Heap,
        stub: u16,
        node: NodeId,
        flags: u64,
        args: &[Vec<Value>],
    ) -> RResult<()> {
        self.enter(heap, stub, node, flags, args, &mut NoProbe)
    }

    /// [`Vm::run_stub`] with a recording probe attached.
    ///
    /// # Errors
    ///
    /// As [`Vm::run`].
    pub fn run_stub_probed(
        &mut self,
        heap: &mut Heap,
        stub: u16,
        node: NodeId,
        flags: u64,
        args: &[Vec<Value>],
        probe: &mut ExecCounters,
    ) -> RResult<()> {
        self.enter(heap, stub, node, flags, args, probe)
    }

    /// The flattened global frame (identical layout across all tiers —
    /// every executor flattens with `flatten_globals`).
    pub fn globals_frame(&self) -> &[Value] {
        &self.globals
    }

    /// Overwrites the flattened global frame (fork workers start from the
    /// orchestrator's snapshot).
    pub fn set_globals_frame(&mut self, frame: &[Value]) {
        assert_eq!(frame.len(), self.globals.len(), "global frame layout");
        self.globals.copy_from_slice(frame);
    }

    fn run_with<P: ExecProbe>(
        &mut self,
        heap: &mut Heap,
        root: NodeId,
        args: &[Vec<Value>],
        probe: &mut P,
    ) -> RResult<()> {
        let entries = self.module.entries.clone();
        if entries.len() == 1 {
            let n = self.module.stubs[entries[0] as usize].n_parts as usize;
            let flags: u64 = (1u64 << n) - 1;
            self.enter(heap, entries[0], root, flags, args, probe)?;
        } else {
            let empty: Vec<Value> = Vec::new();
            for (i, &entry) in entries.iter().enumerate() {
                let part = std::slice::from_ref(args.get(i).unwrap_or(&empty));
                self.enter(heap, entry, root, 0b1, part, probe)?;
            }
        }
        Ok(())
    }

    #[inline]
    fn touch(&mut self, addr: u64) {
        if let Some(cache) = &mut self.cache {
            cache.access(addr);
        }
    }

    #[inline]
    fn slot_addr(heap: &Heap, node: NodeId, slot: usize) -> u64 {
        heap.addr_of(node) + NODE_HEADER_BYTES + SLOT_BYTES * slot as u64
    }

    /// Virtual dispatch through a stub jump table; charges the dispatch
    /// costs and counts the visit.
    fn dispatch(&mut self, heap: &Heap, stub: u16, node: NodeId) -> RResult<u32> {
        self.metrics.instructions += cost::DISPATCH;
        self.metrics.loads += 1;
        self.touch(heap.addr_of(node));
        let class = heap.class_of(node);
        let target = self.module.stubs[stub as usize].targets[class.index()];
        if target == NO_TARGET {
            return Err(RuntimeError::MissingTarget(
                self.module.class_names[class.index()].clone(),
            ));
        }
        self.metrics.visits += 1;
        Ok(target)
    }

    /// Pushes a zeroed register window for function `fidx`.
    fn push_frame(&mut self, fidx: u32) -> usize {
        let base = self.regs.len();
        let total = self.module.funcs[fidx as usize].total_regs as usize;
        self.regs.resize(base + total, Value::Int(0));
        base
    }

    /// Entry-point dispatch: arguments arrive as caller-provided vectors
    /// (one per entry part), as in [`grafter_runtime::Interp::run`].
    fn enter<P: ExecProbe>(
        &mut self,
        heap: &mut Heap,
        stub: u16,
        node: NodeId,
        flags: u64,
        args: &[Vec<Value>],
        probe: &mut P,
    ) -> RResult<()> {
        let fidx = self.dispatch(heap, stub, node)?;
        let base = self.push_frame(fidx);
        let m = self.module;
        for (ti, params) in m.funcs[fidx as usize].params.iter().enumerate() {
            let a = args.get(ti).map(Vec::as_slice).unwrap_or(&[]);
            for (k, &preg) in params.iter().enumerate().take(a.len()) {
                self.regs[base + preg as usize] = a[k];
            }
        }
        let r = self.exec(heap, fidx, node, flags, base, probe);
        self.regs.truncate(base);
        r
    }

    /// Follows a pooled path, counting pointer loads; `None` if any step
    /// is null.
    fn navigate(&mut self, heap: &Heap, node: NodeId, path: u16) -> RResult<Option<NodeId>> {
        let m = self.module;
        let mut cur = node;
        for &field in m.paths[path as usize].iter() {
            let class = heap.class_of(cur);
            let slot = m.offset_of(class.index(), field);
            self.metrics.instructions += 1;
            self.metrics.loads += 1;
            self.touch(Self::slot_addr(heap, cur, slot));
            match heap.get(cur, slot) {
                Value::Ref(Some(c)) => cur = c,
                Value::Ref(None) => return Ok(None),
                _ => return Err(RuntimeError::NotARef),
            }
        }
        Ok(Some(cur))
    }

    /// The dispatch loop: executes one activation of function `fidx`.
    ///
    /// Generic over the probe so the uninstrumented instantiation
    /// (`P = NoProbe`, `P::ENABLED = false`) monomorphizes to exactly the
    /// pre-probe loop — both hooks below are behind `if P::ENABLED`.
    fn exec<P: ExecProbe>(
        &mut self,
        heap: &mut Heap,
        fidx: u32,
        node: NodeId,
        mut active: u64,
        base: usize,
        probe: &mut P,
    ) -> RResult<()> {
        if P::ENABLED {
            probe.enter_func(fidx as usize);
        }
        let m = self.module;
        let mut pc = m.funcs[fidx as usize].entry as usize;
        loop {
            if P::ENABLED {
                probe.exec_op(pc);
            }
            let op = m.ops[pc];
            pc += 1;
            match op {
                Op::Const { dst, c } => {
                    self.regs[base + dst as usize] = m.consts[c as usize];
                }
                Op::Mov { dst, src } => {
                    self.metrics.instructions += 1;
                    self.regs[base + dst as usize] = self.regs[base + src as usize];
                }
                Op::StoreLocal { dst, src, co } => {
                    self.metrics.instructions += 1;
                    self.regs[base + dst as usize] = co.apply(self.regs[base + src as usize]);
                }
                Op::Un { op, dst, src } => {
                    self.metrics.instructions += 1;
                    let v = self.regs[base + src as usize];
                    self.regs[base + dst as usize] = unop(op, v);
                }
                Op::Bin { op, dst, a, b } => {
                    self.metrics.instructions += 1;
                    let (l, r) = (self.regs[base + a as usize], self.regs[base + b as usize]);
                    self.regs[base + dst as usize] = binop(op, l, r);
                }
                Op::Jump { target } => pc = target as usize,
                Op::Branch { cond, target } => {
                    self.metrics.instructions += 1;
                    if !self.regs[base + cond as usize].as_bool() {
                        pc = target as usize;
                    }
                }
                Op::ShortCircuit {
                    reg,
                    jump_if,
                    target,
                } => {
                    let b = self.regs[base + reg as usize].as_bool();
                    self.regs[base + reg as usize] = Value::Bool(b);
                    self.metrics.instructions += 1;
                    if b == jump_if {
                        pc = target as usize;
                    }
                }
                Op::CastBool { reg } => {
                    let b = self.regs[base + reg as usize].as_bool();
                    self.regs[base + reg as usize] = Value::Bool(b);
                }
                Op::Guard { mask, target } => {
                    self.metrics.instructions += cost::GUARD;
                    if active & mask == 0 {
                        pc = target as usize;
                    }
                }
                Op::SkipInactive { traversal, target } => {
                    if active & (1u64 << traversal) == 0 {
                        pc = target as usize;
                    }
                }
                Op::Deactivate { traversal, target } => {
                    active &= !(1u64 << traversal);
                    if active == 0 {
                        return Ok(());
                    }
                    pc = target as usize;
                }
                Op::Ret => return Ok(()),
                Op::ReadTree {
                    dst,
                    path,
                    field,
                    addend,
                } => {
                    let Some(target) = self.navigate(heap, node, path)? else {
                        return Err(RuntimeError::NullDeref);
                    };
                    let class = heap.class_of(target);
                    let slot = m.offset_of(class.index(), field) + addend as usize;
                    self.metrics.instructions += 1;
                    self.metrics.loads += 1;
                    self.touch(Self::slot_addr(heap, target, slot));
                    self.regs[base + dst as usize] = heap.get(target, slot);
                }
                Op::WriteTree {
                    src,
                    path,
                    field,
                    addend,
                    co,
                } => {
                    let Some(target) = self.navigate(heap, node, path)? else {
                        return Err(RuntimeError::NullDeref);
                    };
                    let class = heap.class_of(target);
                    let slot = m.offset_of(class.index(), field) + addend as usize;
                    self.metrics.instructions += 1;
                    self.metrics.stores += 1;
                    self.touch(Self::slot_addr(heap, target, slot));
                    heap.set(target, slot, co.apply(self.regs[base + src as usize]));
                }
                Op::ReadGlobal { dst, idx } => {
                    self.metrics.instructions += 1;
                    self.metrics.loads += 1;
                    self.touch(GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
                    self.regs[base + dst as usize] = self.globals[idx as usize];
                }
                Op::WriteGlobal { src, idx, co } => {
                    self.metrics.instructions += 1;
                    self.metrics.stores += 1;
                    self.touch(GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
                    self.globals[idx as usize] = co.apply(self.regs[base + src as usize]);
                }
                Op::Nav {
                    dst,
                    path,
                    null_target,
                } => match self.navigate(heap, node, path)? {
                    Some(child) => {
                        self.regs[base + dst as usize] = Value::Ref(Some(child));
                    }
                    None => pc = null_target as usize, // traversal stops here
                },
                Op::Call {
                    call,
                    child,
                    argbase,
                } => {
                    let info = &m.calls[call as usize];
                    let mut call_flags = 0u64;
                    for (i, part) in info.parts.iter().enumerate() {
                        if info.charge_flags {
                            self.metrics.instructions += cost::FLAG_SHUFFLE;
                        }
                        if active & (1u64 << part.traversal) != 0 {
                            call_flags |= 1u64 << i;
                        }
                    }
                    let Value::Ref(Some(child_node)) = self.regs[base + child as usize] else {
                        unreachable!("Nav always precedes Call with a live child")
                    };
                    let target = self.dispatch(heap, info.stub, child_node)?;
                    let cbase = self.push_frame(target);
                    for (i, part) in info.parts.iter().enumerate() {
                        let params = &m.funcs[target as usize].params[i];
                        let n = (part.nargs as usize).min(params.len());
                        for k in 0..n {
                            self.regs[cbase + params[k] as usize] =
                                self.regs[base + (argbase + part.argbase) as usize + k];
                        }
                    }
                    let r = self.exec(heap, target, child_node, call_flags, cbase, probe);
                    self.regs.truncate(cbase);
                    r?;
                }
                Op::New { path, field, class } => {
                    if let Some(parent) = self.navigate(heap, node, path)? {
                        let class = ClassId(class as u32);
                        let fresh = heap.alloc(class);
                        self.metrics.instructions += cost::ALLOC;
                        // Constructor initialises the node: touch its lines.
                        let bytes = m.node_bytes[class.index()];
                        let addr = heap.addr_of(fresh);
                        if let Some(cache) = &mut self.cache {
                            cache.access_range(addr, bytes);
                        }
                        self.metrics.stores += 1 + bytes / SLOT_BYTES;
                        let pclass = heap.class_of(parent);
                        let slot = m.offset_of(pclass.index(), field);
                        self.touch(Self::slot_addr(heap, parent, slot));
                        heap.set(parent, slot, Value::Ref(Some(fresh)));
                    }
                }
                Op::Delete { path, field } => {
                    if let Some(parent) = self.navigate(heap, node, path)? {
                        let pclass = heap.class_of(parent);
                        let slot = m.offset_of(pclass.index(), field);
                        self.metrics.loads += 1;
                        self.touch(Self::slot_addr(heap, parent, slot));
                        if let Value::Ref(Some(victim)) = heap.get(parent, slot) {
                            let freed = heap.delete_subtree(victim);
                            self.metrics.instructions += cost::FREE * freed as u64;
                        }
                        heap.set(parent, slot, Value::Ref(None));
                        self.metrics.stores += 1;
                    }
                }
                Op::CallPure {
                    dst,
                    pure,
                    base: abase,
                    n,
                    co,
                } => {
                    let Some(f) = self.pures[pure as usize] else {
                        return Err(RuntimeError::MissingPure(
                            m.pure_names[pure as usize].clone(),
                        ));
                    };
                    self.metrics.instructions += 1 + n as u64;
                    let lo = base + abase as usize;
                    let out = f(&self.regs[lo..lo + n as usize]);
                    self.regs[base + dst as usize] = co.apply(out);
                }

                // ---- optimizer-introduced ops --------------------------
                //
                // Each arm below replays the exact charge/touch sequence
                // of the op pair it replaced (see `crate::opt`): Metrics
                // and cache traffic stay bit-identical to `O0`.
                Op::FoldedConst { dst, c, charge } => {
                    self.metrics.instructions += charge as u64;
                    self.regs[base + dst as usize] = m.consts[c as usize];
                }
                Op::ConstBin { op, dst, a, c } => {
                    self.metrics.instructions += 1;
                    let l = self.regs[base + a as usize];
                    self.regs[base + dst as usize] = binop(op, l, m.consts[c as usize]);
                }
                Op::LocBin { op, dst, a, src } => {
                    self.metrics.instructions += 2; // Mov + Bin
                    let (l, r) = (self.regs[base + a as usize], self.regs[base + src as usize]);
                    self.regs[base + dst as usize] = binop(op, l, r);
                }
                Op::TreeBin {
                    op,
                    dst,
                    a,
                    path,
                    field,
                    addend,
                } => {
                    let Some(target) = self.navigate(heap, node, path)? else {
                        return Err(RuntimeError::NullDeref);
                    };
                    let class = heap.class_of(target);
                    let slot = m.offset_of(class.index(), field) + addend as usize;
                    self.metrics.instructions += 1;
                    self.metrics.loads += 1;
                    self.touch(Self::slot_addr(heap, target, slot));
                    let r = heap.get(target, slot);
                    self.metrics.instructions += 1; // the fused Bin
                    let l = self.regs[base + a as usize];
                    self.regs[base + dst as usize] = binop(op, l, r);
                }
                Op::GlobBin { op, dst, a, idx } => {
                    self.metrics.instructions += 1;
                    self.metrics.loads += 1;
                    self.touch(GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
                    let r = self.globals[idx as usize];
                    self.metrics.instructions += 1; // the fused Bin
                    let l = self.regs[base + a as usize];
                    self.regs[base + dst as usize] = binop(op, l, r);
                }
                Op::BinBranch { op, a, b, target } => {
                    self.metrics.instructions += 2; // Bin + Branch
                    let (l, r) = (self.regs[base + a as usize], self.regs[base + b as usize]);
                    if !binop(op, l, r).as_bool() {
                        pc = target as usize;
                    }
                }
                Op::ConstBinBranch { op, a, c, target } => {
                    self.metrics.instructions += 2; // Bin + Branch (Const free)
                    let l = self.regs[base + a as usize];
                    if !binop(op, l, m.consts[c as usize]).as_bool() {
                        pc = target as usize;
                    }
                }
                Op::LocBinBranch { op, a, src, target } => {
                    self.metrics.instructions += 3; // Mov + Bin + Branch
                    let (l, r) = (self.regs[base + a as usize], self.regs[base + src as usize]);
                    if !binop(op, l, r).as_bool() {
                        pc = target as usize;
                    }
                }
                Op::LocBranch { src, target } => {
                    self.metrics.instructions += 2; // Mov + Branch
                    if !self.regs[base + src as usize].as_bool() {
                        pc = target as usize;
                    }
                }
                Op::TreeBranch {
                    path,
                    field,
                    addend,
                    target,
                } => {
                    let Some(node_t) = self.navigate(heap, node, path)? else {
                        return Err(RuntimeError::NullDeref);
                    };
                    let class = heap.class_of(node_t);
                    let slot = m.offset_of(class.index(), field) + addend as usize;
                    self.metrics.instructions += 1;
                    self.metrics.loads += 1;
                    self.touch(Self::slot_addr(heap, node_t, slot));
                    let v = heap.get(node_t, slot);
                    self.metrics.instructions += 1; // the fused Branch
                    if !v.as_bool() {
                        pc = target as usize;
                    }
                }
                Op::BinLoc { op, dst, a, b, co } => {
                    self.metrics.instructions += 2; // Bin + StoreLocal
                    let (l, r) = (self.regs[base + a as usize], self.regs[base + b as usize]);
                    self.regs[base + dst as usize] = co.apply(binop(op, l, r));
                }
                Op::BinTree {
                    op,
                    a,
                    b,
                    path,
                    field,
                    addend,
                    co,
                } => {
                    self.metrics.instructions += 1; // the fused Bin
                    let (l, r) = (self.regs[base + a as usize], self.regs[base + b as usize]);
                    let v = binop(op, l, r);
                    let Some(target) = self.navigate(heap, node, path)? else {
                        return Err(RuntimeError::NullDeref);
                    };
                    let class = heap.class_of(target);
                    let slot = m.offset_of(class.index(), field) + addend as usize;
                    self.metrics.instructions += 1;
                    self.metrics.stores += 1;
                    self.touch(Self::slot_addr(heap, target, slot));
                    heap.set(target, slot, co.apply(v));
                }
                Op::BinGlob { op, a, b, idx, co } => {
                    self.metrics.instructions += 1; // the fused Bin
                    let (l, r) = (self.regs[base + a as usize], self.regs[base + b as usize]);
                    let v = binop(op, l, r);
                    self.metrics.instructions += 1;
                    self.metrics.stores += 1;
                    self.touch(GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
                    self.globals[idx as usize] = co.apply(v);
                }
                Op::TreeLoc {
                    dst,
                    path,
                    field,
                    addend,
                    co,
                } => {
                    let Some(target) = self.navigate(heap, node, path)? else {
                        return Err(RuntimeError::NullDeref);
                    };
                    let class = heap.class_of(target);
                    let slot = m.offset_of(class.index(), field) + addend as usize;
                    self.metrics.instructions += 1;
                    self.metrics.loads += 1;
                    self.touch(Self::slot_addr(heap, target, slot));
                    let v = heap.get(target, slot);
                    self.metrics.instructions += 1; // the fused StoreLocal
                    self.regs[base + dst as usize] = co.apply(v);
                }
                Op::TreeTree {
                    rpath,
                    rfield,
                    raddend,
                    wpath,
                    wfield,
                    waddend,
                    co,
                } => {
                    let Some(src) = self.navigate(heap, node, rpath)? else {
                        return Err(RuntimeError::NullDeref);
                    };
                    let class = heap.class_of(src);
                    let slot = m.offset_of(class.index(), rfield as u32) + raddend as usize;
                    self.metrics.instructions += 1;
                    self.metrics.loads += 1;
                    self.touch(Self::slot_addr(heap, src, slot));
                    let v = heap.get(src, slot);
                    let Some(dst) = self.navigate(heap, node, wpath)? else {
                        return Err(RuntimeError::NullDeref);
                    };
                    let class = heap.class_of(dst);
                    let slot = m.offset_of(class.index(), wfield as u32) + waddend as usize;
                    self.metrics.instructions += 1;
                    self.metrics.stores += 1;
                    self.touch(Self::slot_addr(heap, dst, slot));
                    heap.set(dst, slot, co.apply(v));
                }
                Op::ConstTree {
                    c,
                    path,
                    field,
                    addend,
                    co,
                } => {
                    let Some(target) = self.navigate(heap, node, path)? else {
                        return Err(RuntimeError::NullDeref);
                    };
                    let class = heap.class_of(target);
                    let slot = m.offset_of(class.index(), field) + addend as usize;
                    self.metrics.instructions += 1;
                    self.metrics.stores += 1;
                    self.touch(Self::slot_addr(heap, target, slot));
                    heap.set(target, slot, co.apply(m.consts[c as usize]));
                }
                Op::ConstGlob { c, idx, co } => {
                    self.metrics.instructions += 1;
                    self.metrics.stores += 1;
                    self.touch(GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
                    self.globals[idx as usize] = co.apply(m.consts[c as usize]);
                }
                Op::ConstLoc { dst, c, co } => {
                    self.metrics.instructions += 1;
                    self.regs[base + dst as usize] = co.apply(m.consts[c as usize]);
                }
                Op::LocTree {
                    src,
                    path,
                    field,
                    addend,
                    co,
                } => {
                    self.metrics.instructions += 1; // the fused Mov
                    let v = self.regs[base + src as usize];
                    let Some(target) = self.navigate(heap, node, path)? else {
                        return Err(RuntimeError::NullDeref);
                    };
                    let class = heap.class_of(target);
                    let slot = m.offset_of(class.index(), field) + addend as usize;
                    self.metrics.instructions += 1;
                    self.metrics.stores += 1;
                    self.touch(Self::slot_addr(heap, target, slot));
                    heap.set(target, slot, co.apply(v));
                }
                Op::LocGlob { src, idx, co } => {
                    self.metrics.instructions += 2; // Mov + WriteGlobal
                    self.metrics.stores += 1;
                    self.touch(GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
                    self.globals[idx as usize] = co.apply(self.regs[base + src as usize]);
                }
                Op::LocLoc { dst, src, co } => {
                    self.metrics.instructions += 2; // Mov + StoreLocal
                    self.regs[base + dst as usize] = co.apply(self.regs[base + src as usize]);
                }
                Op::NavCall {
                    call,
                    path,
                    argbase,
                    null_target,
                } => {
                    match self.navigate(heap, node, path)? {
                        None => pc = null_target as usize, // traversal stops here
                        Some(child_node) => {
                            let info = &m.calls[call as usize];
                            let mut call_flags = 0u64;
                            for (i, part) in info.parts.iter().enumerate() {
                                if info.charge_flags {
                                    self.metrics.instructions += cost::FLAG_SHUFFLE;
                                }
                                if active & (1u64 << part.traversal) != 0 {
                                    call_flags |= 1u64 << i;
                                }
                            }
                            let target = self.dispatch(heap, info.stub, child_node)?;
                            let cbase = self.push_frame(target);
                            for (i, part) in info.parts.iter().enumerate() {
                                let params = &m.funcs[target as usize].params[i];
                                let n = (part.nargs as usize).min(params.len());
                                for k in 0..n {
                                    self.regs[cbase + params[k] as usize] =
                                        self.regs[base + (argbase + part.argbase) as usize + k];
                                }
                            }
                            let r = self.exec(heap, target, child_node, call_flags, cbase, probe);
                            self.regs.truncate(cbase);
                            r?;
                        }
                    }
                }
                Op::CallMono {
                    call,
                    child,
                    argbase,
                    target,
                    class,
                } => {
                    let info = &m.calls[call as usize];
                    let mut call_flags = 0u64;
                    for (i, part) in info.parts.iter().enumerate() {
                        if info.charge_flags {
                            self.metrics.instructions += cost::FLAG_SHUFFLE;
                        }
                        if active & (1u64 << part.traversal) != 0 {
                            call_flags |= 1u64 << i;
                        }
                    }
                    let Value::Ref(Some(child_node)) = self.regs[base + child as usize] else {
                        unreachable!("Nav always precedes Call with a live child")
                    };
                    // Devirtualised dispatch: same charges and touch as
                    // the jump-table path, one class check instead of the
                    // table indirection.
                    self.metrics.instructions += cost::DISPATCH;
                    self.metrics.loads += 1;
                    self.touch(heap.addr_of(child_node));
                    let dynamic = heap.class_of(child_node);
                    if dynamic.index() != class as usize {
                        return Err(RuntimeError::MissingTarget(
                            m.class_names[dynamic.index()].clone(),
                        ));
                    }
                    self.metrics.visits += 1;
                    let cbase = self.push_frame(target);
                    for (i, part) in info.parts.iter().enumerate() {
                        let params = &m.funcs[target as usize].params[i];
                        let n = (part.nargs as usize).min(params.len());
                        for k in 0..n {
                            self.regs[cbase + params[k] as usize] =
                                self.regs[base + (argbase + part.argbase) as usize + k];
                        }
                    }
                    let r = self.exec(heap, target, child_node, call_flags, cbase, probe);
                    self.regs.truncate(cbase);
                    r?;
                }
            }
        }
    }
}
