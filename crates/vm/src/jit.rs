//! The closure-threaded native tier: bytecode pre-compiled into a graph
//! of monomorphized Rust closures, executed with **zero opcode dispatch**.
//!
//! The register VM ([`crate::Vm`]) already removed the interpreter's name
//! lookups and per-visit allocations, but every op still pays one
//! `match opcode` round through the dispatch loop. This module removes
//! that last layer: [`compile`] walks each optimized function's
//! control-flow graph once and threads every basic block into **one
//! continuation chain of pre-built closures**. Each step closure captures
//! its operands — constants, field ids, path slices, jump-table indices
//! and coercions are resolved into *captured values* at compile time —
//! plus the rest of its own block's chain, so executing an op is a
//! direct indirect call into a monomorphized body, never a `match` over
//! an opcode. Control transfer is resolved at compile time too: forward
//! edges are captured as direct calls into the successor's chain,
//! `Jump`s and resolved flag tests dissolve into the successor outright,
//! and only back edges bounce through a per-activation trampoline by
//! returning the target block's index. Runs of consecutive register-file
//! ops collapse into single fused closures, and a field load feeding a
//! compare-and-branch fuses with it.
//!
//! The calling convention is deliberately lean: per-activation state
//! (receiver, active-traversal flags, register-frame base) travels in one
//! `Frame`, so every closure call is four pointer-sized arguments — all
//! in registers — and returns a `u32` flow code. Runtime errors are rare,
//! so their payload is stashed in the `Machine` out of the hot return
//! path.
//!
//! Two execution modes, chosen at compile time (the mode is a
//! const-generic, so the unused half of every closure body is compiled
//! out, not branched over):
//!
//! - [`JitMode::Counted`] replays the VM's **exact** charge/touch
//!   sequence: the same [`grafter_runtime::cost`] constants at the same
//!   execution points, the same simulated byte addresses in the same
//!   order. `Metrics` and cache traffic are bit-identical to the
//!   interpreter and the VM — the three-way differential suite
//!   (`tests/jit_differential.rs`) is the executable statement.
//! - [`JitMode::Release`] drops the accounting entirely — no instruction
//!   charges, no load/store counters, no cache simulation — and goes flat
//!   out. Only the `visits` counter survives (one increment per dispatch;
//!   it is what cross-run sanity checks and throughput metrics key on).
//!   Heap effects, final globals and runtime errors remain identical to
//!   counted mode; a cache model attached to a release run records
//!   nothing. Release compilation additionally specializes each function
//!   for the active-flag words it can actually be entered with
//!   (enumerated through the call graph): under a pinned word, flag
//!   guards and skip tests collapse to their statically taken edge and
//!   retraversal becomes a constant store, with the runtime-tested
//!   generic chains kept as the always-correct fallback.
//!
//! [`JitProgram`] is immutable and `Send + Sync` — like the bytecode
//! [`Module`] it is compiled from, one instance serves any number of
//! sessions and threads ([`grafter_engine::Engine`] compiles it exactly
//! once at build).
//!
//! [`grafter_engine::Engine`]: https://docs.rs/grafter-engine

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use grafter_cachesim::CacheHierarchy;
use grafter_frontend::ClassId;
use grafter_runtime::ops::{binop, unop};
use grafter_runtime::{
    cost, Heap, Metrics, NativeFn, NodeId, PureRegistry, RuntimeError, Value, NODE_HEADER_BYTES,
    SLOT_BYTES,
};

use crate::exec::GLOBALS_BASE_ADDR;
use crate::module::{CallInfo, CallPartInfo, Co, Module, Op, NO_TARGET};
use crate::opt::op_target;

type RResult<T> = Result<T, RuntimeError>;

/// How a compiled [`JitProgram`] accounts for its execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum JitMode {
    /// Replay the VM's exact charge/touch sequence: `Metrics` and cache
    /// traffic bit-identical to [`crate::Vm`] and the interpreter.
    #[default]
    Counted,
    /// Drop all accounting (only `visits` survives) and go flat out.
    /// Same heap effects, globals and errors; attached cache models stay
    /// silent.
    Release,
}

impl fmt::Display for JitMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            JitMode::Counted => "counted",
            JitMode::Release => "release",
        })
    }
}

impl FromStr for JitMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "counted" => Ok(JitMode::Counted),
            "release" => Ok(JitMode::Release),
            other => Err(format!(
                "unknown jit mode `{other}` (expected counted|release)"
            )),
        }
    }
}

/// Flow code: the activation returns normally.
const FLOW_RET: u32 = u32::MAX;
/// Flow code: the run aborts; the error payload is in [`Machine::error`].
const FLOW_ERR: u32 = u32::MAX - 1;

/// One activation's state, threaded through every closure by reference so
/// a block/step call carries four pointer-sized arguments total.
struct Frame {
    /// The receiver node of this activation.
    node: NodeId,
    /// Active-traversal flag word (terminators may clear bits).
    active: u64,
    /// This activation's base index into the shared register stack.
    base: usize,
}

/// The mutable machine state one run threads through every closure:
/// the shared register stack, the flattened global frame, resolved pure
/// implementations, the stashed error of a failing run, and (counted
/// mode) the counters and simulated cache.
struct Machine {
    metrics: Metrics,
    cache: Option<CacheHierarchy>,
    pures: Vec<Option<NativeFn>>,
    globals: Vec<Value>,
    regs: Vec<Value>,
    /// Set exactly when a closure returns `false`/[`FLOW_ERR`]; keeping
    /// the payload here keeps every hot return register-sized.
    error: Option<RuntimeError>,
    /// Per-function/per-block hit counters of a probed run (attached by
    /// [`Jit::with_counters`]); `None` in normal runs, costing one
    /// predicted branch per activation and nothing per op.
    probe: Option<Box<grafter_obs::ChainCounters>>,
}

/// One compiled basic block's continuation: a chain of step closures
/// ending in the terminator. Each step directly calls the next closure it
/// captured at compile time, and terminators directly call their
/// *forward* successors' continuations too (shared via `Arc` when a block
/// has several predecessors) — so every call site is monomorphic: always
/// the same target, perfectly predicted. Only back edges return an index
/// (or [`FLOW_RET`]/[`FLOW_ERR`]) to the trampoline in [`run_func`],
/// which keeps loop nesting off the native stack.
type BlockFn = Arc<dyn Fn(&JitProgram, &mut Machine, &mut Heap, &mut Frame) -> u32 + Send + Sync>;

/// A terminator's compile-time-resolved successor: forward edges hold the
/// successor's continuation and call straight into it; back edges bounce
/// the block index off the trampoline. A successor that is nothing but
/// `Ret` collapses to the flow code itself — no call at all — which
/// shaves one indirect call per visit off the tiny guard/call/ret
/// functions dispatch-heavy traversals are made of.
enum Succ {
    Direct(BlockFn),
    Tramp(u32),
    Ret,
}

impl Succ {
    #[inline]
    fn go(&self, jit: &JitProgram, st: &mut Machine, heap: &mut Heap, f: &mut Frame) -> u32 {
        match self {
            Succ::Direct(cont) => cont(jit, st, heap, f),
            Succ::Tramp(b) => *b,
            Succ::Ret => FLOW_RET,
        }
    }
}

/// Compile-time successor lookup for one block's terminator: resolves a
/// jump target (or the fallthrough) against the continuations already
/// built for the blocks after it.
struct Succs<'a> {
    conts: &'a [Option<BlockFn>],
    /// Blocks that consist solely of `Ret` (collapse to [`Succ::Ret`]).
    ret_only: &'a [bool],
    bi: u32,
    block_of: &'a dyn Fn(u32) -> u32,
}

impl Succs<'_> {
    fn of_block(&self, t: u32) -> Succ {
        if self.ret_only[t as usize] {
            Succ::Ret
        } else if t > self.bi {
            Succ::Direct(
                self.conts[t as usize]
                    .clone()
                    .expect("forward continuations are built back-to-front"),
            )
        } else {
            Succ::Tramp(t)
        }
    }

    /// The successor at jump-target pc `pc`.
    fn of_pc(&self, pc: u32) -> Succ {
        self.of_block((self.block_of)(pc))
    }

    /// The fallthrough successor (always forward).
    fn fall(&self) -> Succ {
        self.of_block(self.bi + 1)
    }

    /// The fallthrough continuation itself, for blocks ending at a block
    /// boundary with no terminator op.
    fn fall_cont(&self) -> BlockFn {
        match self.fall() {
            Succ::Direct(cont) => cont,
            Succ::Ret => Arc::new(|_, _, _, _| FLOW_RET),
            Succ::Tramp(_) => unreachable!("fallthrough is always a forward edge"),
        }
    }
}

/// One compiled function: its block array (entry is block 0) plus the
/// frame metadata the caller needs to invoke it.
struct JitFunc {
    blocks: Vec<BlockFn>,
    /// Release-mode variants specialized per entry flag word (the words
    /// [`entry_flag_words`] enumerates from the call graph): inside a
    /// variant every resolvable `Guard`/`SkipInactive`/`Deactivate`
    /// outcome is fixed at compile time, so flag-test blocks alias
    /// straight to their chosen successor's continuation and the tests
    /// vanish from the hot path. Empty in counted mode, which keeps the
    /// charge-exact generic path.
    variants: Box<[(u64, Vec<BlockFn>)]>,
    /// Whether the body is nothing but `Ret` — the no-op handler classes
    /// outside a pass's interest dispatch to. Invoking it can skip the
    /// whole activation (it charges nothing and touches no state).
    trivial: bool,
    total_regs: u16,
    params: Box<[Box<[u16]>]>,
}

/// A dispatch jump table, copied out of the module so the compiled
/// program is self-contained.
struct JitStub {
    n_parts: u8,
    targets: Box<[u32]>,
}

/// A fused program compiled to closure-threaded native form — the
/// artifact [`compile`] produces and [`Jit`] executes.
///
/// Immutable and `Send + Sync`: compile once, run from any number of
/// threads.
pub struct JitProgram {
    funcs: Vec<JitFunc>,
    stubs: Vec<JitStub>,
    /// Entry stubs in invocation order (mirrors [`Module`]).
    entries: Vec<u16>,
    class_names: Vec<String>,
    /// Dense `class * n_fields + field → slot` table.
    field_offsets: Vec<u32>,
    n_fields: usize,
    globals_init: Vec<Value>,
    global_names: Vec<(String, u32)>,
    pure_names: Vec<String>,
    mode: JitMode,
    /// Flattened block-counter base per function (`block_base[fi] + bi`
    /// is block `bi`'s slot in [`grafter_obs::ChainCounters`]).
    block_base: Vec<usize>,
    /// Whether block-hit probes were woven into the chains at compile
    /// time ([`compile_with`] with `probed = true`).
    probed: bool,
}

impl JitProgram {
    /// The accounting mode this program was compiled for.
    pub fn mode(&self) -> JitMode {
        self.mode
    }

    /// Number of compiled functions.
    pub fn n_functions(&self) -> usize {
        self.funcs.len()
    }

    /// Total number of compiled basic-block closures.
    pub fn n_blocks(&self) -> usize {
        self.funcs.iter().map(|f| f.blocks.len()).sum()
    }

    /// Whether block-hit probes were compiled into the chains.
    pub fn probed(&self) -> bool {
        self.probed
    }

    /// Zeroed hit counters sized for this program (one slot per function
    /// and per compiled block).
    pub fn counters(&self) -> grafter_obs::ChainCounters {
        grafter_obs::ChainCounters::new(self.n_functions(), self.n_blocks())
    }

    /// Aggregates raw [`grafter_obs::ChainCounters`] from a probed run
    /// into a named [`grafter_obs::TierProfile`], resolving names through
    /// the `module` this program was compiled from (function and block
    /// indices of the two artifacts coincide by construction).
    ///
    /// Two structural gaps are inherent to the chain encoding: blocks
    /// that are nothing but `Ret` collapse into flow codes and are never
    /// entered, and trivial (ret-only) functions are skipped by the call
    /// path entirely — both legitimately report zero.
    pub fn profile(
        &self,
        counters: &grafter_obs::ChainCounters,
        module: &Module,
    ) -> grafter_obs::TierProfile {
        let mut p = grafter_obs::TierProfile::default();
        for i in 0..self.funcs.len() {
            let hits = counters.func_hits.get(i).copied().unwrap_or(0);
            if hits > 0 {
                p.func_hits
                    .push((module.function_name(i).to_string(), hits));
            }
        }
        for (i, f) in self.funcs.iter().enumerate() {
            for bi in 0..f.blocks.len() {
                let slot = self.block_base[i] + bi;
                let hits = counters.block_hits.get(slot).copied().unwrap_or(0);
                if hits > 0 {
                    p.block_hits
                        .push((format!("{}/b{bi}", module.function_name(i)), hits));
                }
            }
        }
        p
    }

    /// Slot offset of `field` within dynamic class `class`.
    #[inline]
    fn offset_of(&self, class: usize, field: u32) -> usize {
        let off = self.field_offsets[class * self.n_fields + field as usize];
        debug_assert_ne!(off, u32::MAX, "field not present on class");
        off as usize
    }
}

impl fmt::Debug for JitProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JitProgram")
            .field("mode", &self.mode)
            .field("functions", &self.n_functions())
            .field("blocks", &self.n_blocks())
            .finish_non_exhaustive()
    }
}

// ---- basic-block discovery -----------------------------------------------

/// Whether `op` ends a basic block (transfers or may transfer control).
pub(crate) fn is_block_terminator(op: &Op) -> bool {
    op_target(op).is_some() || matches!(op, Op::Ret)
}

/// The basic blocks of function `fidx`, as `(start, end)` pc ranges in
/// program order. Block boundaries are the function entry, every jump
/// target, and the op after every control transfer — the CFG the JIT
/// compiles from, and the grouping `grafterc --disasm-blocks` prints.
pub(crate) fn basic_blocks(module: &Module, fidx: usize) -> Vec<(u32, u32)> {
    let f = &module.funcs[fidx];
    let mut starts = vec![f.entry];
    for pc in f.entry..f.end {
        let op = &module.ops[pc as usize];
        if let Some(t) = op_target(op) {
            debug_assert!((f.entry..f.end).contains(&t), "intra-function target");
            starts.push(t);
        }
        if is_block_terminator(op) && pc + 1 < f.end {
            starts.push(pc + 1);
        }
    }
    starts.sort_unstable();
    starts.dedup();
    starts
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, starts.get(i + 1).copied().unwrap_or(f.end)))
        .collect()
}

// ---- compilation ---------------------------------------------------------

/// Compiles an optimized bytecode [`Module`] into a closure-threaded
/// [`JitProgram`] for `mode`.
///
/// This is the expensive, once-per-program step (the engine runs it at
/// build); execution afterwards performs no opcode dispatch at all.
pub fn compile(module: &Module, mode: JitMode) -> JitProgram {
    compile_with(module, mode, false)
}

/// Compiles like [`compile`], optionally (`probed = true`) weaving a
/// block-hit probe into the head of every chain: each block entry bumps
/// one [`grafter_obs::ChainCounters`] slot when a counter box is attached
/// to the run ([`Jit::with_counters`]). Probed chains cost one predicted
/// branch per block even with no counters attached, which is why the
/// default compile leaves them out entirely.
pub fn compile_with(module: &Module, mode: JitMode, probed: bool) -> JitProgram {
    let known = sole_dispatch_classes(module);
    let mut block_base = Vec::with_capacity(module.funcs.len());
    let mut total_blocks = 0usize;
    for fi in 0..module.funcs.len() {
        block_base.push(total_blocks);
        total_blocks += basic_blocks(module, fi).len();
    }
    let base_of = |fi: usize| if probed { Some(block_base[fi]) } else { None };
    let funcs = match mode {
        JitMode::Counted => (0..module.funcs.len())
            .map(|fi| compile_func::<true>(module, fi, known[fi], &[], base_of(fi)))
            .collect(),
        JitMode::Release => {
            let words = entry_flag_words(module, 12);
            (0..module.funcs.len())
                .map(|fi| compile_func::<false>(module, fi, known[fi], &words[fi], base_of(fi)))
                .collect()
        }
    };
    JitProgram {
        funcs,
        stubs: module
            .stubs
            .iter()
            .map(|s| JitStub {
                n_parts: s.n_parts,
                targets: s.targets.clone(),
            })
            .collect(),
        entries: module.entries.clone(),
        class_names: module.class_names.clone(),
        field_offsets: module.field_offsets.clone(),
        n_fields: module.n_fields,
        globals_init: module.globals_init.clone(),
        global_names: module.global_names.clone(),
        pure_names: module.pure_names.clone(),
        mode,
        block_base,
        probed,
    }
}

/// The receiver class each function is *always* dispatched on, when there
/// is exactly one. Every invocation flows through a stub jump table or a
/// devirtualised `CallMono` class check, so when all recorded edges into
/// a function carry the same receiver class, `this` has a statically
/// known layout inside it — the layer of specialization bytecode shared
/// across classes cannot express.
fn sole_dispatch_classes(module: &Module) -> Vec<Option<usize>> {
    let n = module.funcs.len();
    let mut known: Vec<Option<usize>> = vec![None; n];
    let mut conflicted = vec![false; n];
    let mut edge = |target: u32, class: usize| {
        let t = target as usize;
        match known[t] {
            None if !conflicted[t] => known[t] = Some(class),
            Some(c) if c != class => {
                known[t] = None;
                conflicted[t] = true;
            }
            _ => {}
        }
    };
    for stub in &module.stubs {
        for (class, &target) in stub.targets.iter().enumerate() {
            if target != NO_TARGET {
                edge(target, class);
            }
        }
    }
    for op in &module.ops {
        if let Op::CallMono { target, class, .. } = *op {
            edge(target, class as usize);
        }
    }
    known
}

/// A tree field access with everything resolvable at compile time
/// resolved: when the receiver class is known, an empty-path access is a
/// bare precomputed slot and a non-empty path has its first hop
/// pre-resolved.
struct FieldRef {
    path: Box<[u32]>,
    field: u32,
    addend: u32,
    /// Pre-resolved first path hop slot, or `u32::MAX` when dynamic.
    first_slot: u32,
    /// Fully pre-resolved receiver slot, or `u32::MAX` when dynamic.
    slot: u32,
}

impl FieldRef {
    fn new(module: &Module, known: Option<usize>, path: u16, field: u32, addend: u32) -> FieldRef {
        let path = module.paths[path as usize].clone();
        let (mut first_slot, mut slot) = (u32::MAX, u32::MAX);
        if let Some(class) = known {
            match path.first() {
                None => slot = module.offset_of(class, field) as u32 + addend,
                Some(&hop) => first_slot = module.offset_of(class, hop) as u32,
            }
        }
        FieldRef {
            path,
            field,
            addend,
            first_slot,
            slot,
        }
    }

    /// Resolves the access target and slot from `node`: `None` when a
    /// path hop is null. Charges exactly [`navigate`]'s per-hop sequence;
    /// slot lookup itself is uncharged, as in the VM.
    #[inline]
    fn locate<const C: bool>(
        &self,
        jit: &JitProgram,
        st: &mut Machine,
        heap: &Heap,
        node: NodeId,
    ) -> RResult<Option<(NodeId, usize)>> {
        if self.slot != u32::MAX {
            return Ok(Some((node, self.slot as usize)));
        }
        let mut cur = node;
        let mut path = &self.path[..];
        if self.first_slot != u32::MAX {
            let slot = self.first_slot as usize;
            if C {
                st.metrics.instructions += 1;
                st.metrics.loads += 1;
                touch(st, slot_addr(heap, cur, slot));
            }
            match heap.get(cur, slot) {
                Value::Ref(Some(c)) => cur = c,
                Value::Ref(None) => return Ok(None),
                _ => return Err(RuntimeError::NotARef),
            }
            path = &path[1..];
        }
        match navigate::<C>(jit, st, heap, cur, path)? {
            None => Ok(None),
            Some(target) => {
                let class = heap.class_of(target);
                let slot = jit.offset_of(class.index(), self.field) + self.addend as usize;
                Ok(Some((target, slot)))
            }
        }
    }

    /// [`locate`](FieldRef::locate) for data accesses, where a null on
    /// the path is itself the error: stashes it and returns `None`.
    #[inline]
    fn locate_strict<const C: bool>(
        &self,
        jit: &JitProgram,
        st: &mut Machine,
        heap: &Heap,
        node: NodeId,
    ) -> Option<(NodeId, usize)> {
        match self.locate::<C>(jit, st, heap, node) {
            Ok(Some(at)) => Some(at),
            Ok(None) => {
                flow_fail(st, RuntimeError::NullDeref);
                None
            }
            Err(e) => {
                flow_fail(st, e);
                None
            }
        }
    }
}

/// A pure path navigation (no field) with its first hop pre-resolved when
/// the receiver class is known.
struct NavRef {
    path: Box<[u32]>,
    /// Pre-resolved first path hop slot, or `u32::MAX` when dynamic.
    first_slot: u32,
}

impl NavRef {
    fn new(module: &Module, known: Option<usize>, path: u16) -> NavRef {
        let path = module.paths[path as usize].clone();
        let first_slot = match (known, path.first()) {
            (Some(class), Some(&hop)) => module.offset_of(class, hop) as u32,
            _ => u32::MAX,
        };
        NavRef { path, first_slot }
    }

    /// Follows the path from `node`; `None` if a hop is null. Same charge
    /// sequence as [`navigate`].
    #[inline]
    fn walk<const C: bool>(
        &self,
        jit: &JitProgram,
        st: &mut Machine,
        heap: &Heap,
        node: NodeId,
    ) -> RResult<Option<NodeId>> {
        let mut cur = node;
        let mut path = &self.path[..];
        if self.first_slot != u32::MAX {
            let slot = self.first_slot as usize;
            if C {
                st.metrics.instructions += 1;
                st.metrics.loads += 1;
                touch(st, slot_addr(heap, cur, slot));
            }
            match heap.get(cur, slot) {
                Value::Ref(Some(c)) => cur = c,
                Value::Ref(None) => return Ok(None),
                _ => return Err(RuntimeError::NotARef),
            }
            path = &path[1..];
        }
        navigate::<C>(jit, st, heap, cur, path)
    }
}

/// Compiles one function's blocks; `C` selects counted accounting and
/// `known` is the function's sole dispatch class, when it has one.
fn compile_func<const C: bool>(
    module: &Module,
    fidx: usize,
    known: Option<usize>,
    words: &[u64],
    probe_base: Option<usize>,
) -> JitFunc {
    let f = &module.funcs[fidx];
    let trivial = f.end - f.entry == 1 && matches!(module.ops[f.entry as usize], Op::Ret);
    let blocks = build_blocks::<C>(module, fidx, known, None, None, probe_base);
    let variants = words
        .iter()
        .map(|&w| {
            (
                w,
                build_blocks::<C>(module, fidx, known, Some(w), Some(&blocks), probe_base),
            )
        })
        .collect();
    JitFunc {
        blocks,
        variants,
        trivial,
        total_regs: f.total_regs,
        params: f.params.clone(),
    }
}

/// The flag words each function can be entered with, enumerated by
/// propagating the engine's entry convention through the call graph:
/// under a dataflow-pinned caller word, every call site's callee word is
/// exactly computable and flows to every target its stub can dispatch
/// to. Best-effort by construction — a word dropped by the per-function
/// `cap` (or a site in a conflicted block) just means those activations
/// run the always-correct generic chains.
fn entry_flag_words(module: &Module, cap: usize) -> Vec<Vec<u64>> {
    fn add(words: &mut [Vec<u64>], pending: &mut Vec<(usize, u64)>, cap: usize, fi: usize, w: u64) {
        let set = &mut words[fi];
        if set.len() >= cap || set.contains(&w) {
            return;
        }
        set.push(w);
        pending.push((fi, w));
    }
    fn gather(info: &CallInfo, active: u64) -> u64 {
        let mut flags = 0u64;
        for (i, part) in info.parts.iter().enumerate().take(64) {
            if active & (1u64 << part.traversal) != 0 {
                flags |= 1u64 << i;
            }
        }
        flags
    }
    let mut words: Vec<Vec<u64>> = vec![Vec::new(); module.funcs.len()];
    let mut pending: Vec<(usize, u64)> = Vec::new();
    // Seeds mirror `Jit::run`: one fused entry runs all-active, separate
    // entries run one traversal each.
    if module.entries.len() == 1 {
        let stub = &module.stubs[module.entries[0] as usize];
        let n = stub.n_parts as usize;
        let word = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
        for &t in stub.targets.iter() {
            if t != NO_TARGET {
                add(&mut words, &mut pending, cap, t as usize, word);
            }
        }
    } else {
        for &e in &module.entries {
            for &t in module.stubs[e as usize].targets.iter() {
                if t != NO_TARGET {
                    add(&mut words, &mut pending, cap, t as usize, 0b1);
                }
            }
        }
    }
    // Distinct flag words a single block is tracked under before the
    // walk stops following it (a compile-time bound, not a correctness
    // one — untracked pairs only mean fewer enumerated entry words).
    const BLOCK_CAP: usize = 16;
    while let Some((fi, word)) = pending.pop() {
        let blocks = basic_blocks(module, fi);
        let block_of = |pc: u32| -> usize {
            blocks
                .binary_search_by_key(&pc, |&(s, _)| s)
                .expect("every jump target starts a block")
        };
        // Exact (block, word) reachability — unlike `known_actives`,
        // joins of different words don't conflict, they just enumerate
        // both, so call sites past a join still propagate.
        let mut seen: Vec<Vec<u64>> = vec![Vec::new(); blocks.len()];
        let mut wl = vec![(0usize, word)];
        while let Some((bi, a)) = wl.pop() {
            let set = &mut seen[bi];
            if set.contains(&a) || set.len() >= BLOCK_CAP {
                continue;
            }
            set.push(a);
            let (start, end) = blocks[bi];
            for pc in start..end {
                match module.ops[pc as usize] {
                    Op::Call { call, .. } | Op::NavCall { call, .. } => {
                        let info = &module.calls[call as usize];
                        let w = gather(info, a);
                        for &t in module.stubs[info.stub as usize].targets.iter() {
                            if t != NO_TARGET {
                                add(&mut words, &mut pending, cap, t as usize, w);
                            }
                        }
                    }
                    Op::CallMono { call, target, .. } => {
                        let info = &module.calls[call as usize];
                        let w = gather(info, a);
                        add(&mut words, &mut pending, cap, target as usize, w);
                    }
                    _ => {}
                }
            }
            match module.ops[(end - 1) as usize] {
                Op::Guard { mask, target } => {
                    let t = if mask & a != 0 {
                        bi + 1
                    } else {
                        block_of(target)
                    };
                    wl.push((t, a));
                }
                Op::SkipInactive { traversal, target } => {
                    let t = if a & (1u64 << traversal) != 0 {
                        bi + 1
                    } else {
                        block_of(target)
                    };
                    wl.push((t, a));
                }
                Op::Deactivate { traversal, target } => {
                    let cleared = a & !(1u64 << traversal);
                    if cleared != 0 {
                        wl.push((block_of(target), cleared));
                    }
                }
                Op::Ret => {}
                Op::Jump { target } => wl.push((block_of(target), a)),
                op => {
                    if is_block_terminator(&op) {
                        if let Some(target) = op_target(&op) {
                            wl.push((block_of(target), a));
                        }
                    }
                    wl.push((bi + 1, a));
                }
            }
        }
    }
    words
}

/// Per-block compile-time knowledge of the frame's `active` flag word
/// when the function is entered all-active, computed by forward dataflow
/// over the CFG. `Guard`/`SkipInactive` follow their statically chosen
/// edge; `Deactivate` propagates the cleared word; a join of two
/// different words (or any edge out of a conflicted block) demotes the
/// target to `Conflict`, whose chain falls back to the generic,
/// runtime-tested one.
#[derive(Clone, Copy, PartialEq)]
enum KnownActive {
    Unseen,
    Val(u64),
    Conflict,
}

fn known_actives(module: &Module, blocks: &[(u32, u32)], entry_active: u64) -> Vec<KnownActive> {
    let block_of = |pc: u32| -> usize {
        blocks
            .binary_search_by_key(&pc, |&(s, _)| s)
            .expect("every jump target starts a block")
    };
    let mut state = vec![KnownActive::Unseen; blocks.len()];
    let mut work = vec![(0usize, KnownActive::Val(entry_active))];
    while let Some((bi, incoming)) = work.pop() {
        let merged = match (state[bi], incoming) {
            (KnownActive::Unseen, v) | (v, KnownActive::Unseen) => v,
            (KnownActive::Conflict, _) | (_, KnownActive::Conflict) => KnownActive::Conflict,
            (KnownActive::Val(a), KnownActive::Val(b)) if a == b => continue,
            (KnownActive::Val(_), KnownActive::Val(_)) => KnownActive::Conflict,
        };
        if merged == state[bi] {
            continue;
        }
        state[bi] = merged;
        let (_, end) = blocks[bi];
        let last = &module.ops[(end - 1) as usize];
        let mut push = |b: usize, v: KnownActive| work.push((b, v));
        match (merged, *last) {
            // A resolved flag test follows only its statically taken edge.
            (KnownActive::Val(a), Op::Guard { mask, target }) => {
                let t = if mask & a != 0 {
                    bi + 1
                } else {
                    block_of(target)
                };
                push(t, KnownActive::Val(a));
            }
            (KnownActive::Val(a), Op::SkipInactive { traversal, target }) => {
                let t = if a & (1u64 << traversal) != 0 {
                    bi + 1
                } else {
                    block_of(target)
                };
                push(t, KnownActive::Val(a));
            }
            (KnownActive::Val(a), Op::Deactivate { traversal, target }) => {
                let cleared = a & !(1u64 << traversal);
                if cleared != 0 {
                    push(block_of(target), KnownActive::Val(cleared));
                }
            }
            (v, op) => {
                // Unresolved (or conflicted) control flow: every
                // structural successor inherits `v`.
                if !is_block_terminator(&op) {
                    push(bi + 1, v);
                } else {
                    match op {
                        Op::Ret => {}
                        Op::Jump { target } => push(block_of(target), v),
                        Op::Deactivate {
                            traversal: _,
                            target,
                        } => push(block_of(target), v),
                        _ => {
                            if let Some(target) = op_target(&op) {
                                push(block_of(target), v);
                            }
                            push(bi + 1, v);
                        }
                    }
                }
            }
        }
    }
    state
}

/// Builds the block-closure array for one function. With `spec =
/// Some(all_active)` the flag word is tracked block-by-block (see
/// [`known_actives`]): every resolvable `Guard`/`SkipInactive` collapses
/// to its statically chosen successor and `Deactivate` becomes a bare
/// constant store, while conflicted blocks reuse the runtime-tested
/// chains from `generic` (release mode only — counted keeps the generic
/// path so the guard charges stay in their exact places).
fn build_blocks<const C: bool>(
    module: &Module,
    fidx: usize,
    known: Option<usize>,
    spec: Option<u64>,
    generic: Option<&[BlockFn]>,
    probe_base: Option<usize>,
) -> Vec<BlockFn> {
    let blocks = basic_blocks(module, fidx);
    let block_of = |pc: u32| -> u32 {
        blocks
            .binary_search_by_key(&pc, |&(s, _)| s)
            .expect("every jump target starts a block") as u32
    };
    let ret_only: Vec<bool> = blocks
        .iter()
        .map(|&(start, end)| end - start == 1 && matches!(module.ops[start as usize], Op::Ret))
        .collect();
    let ka = spec.map(|aa| known_actives(module, &blocks, aa));
    // Build back-to-front so every forward successor's continuation
    // already exists when a terminator wants to capture it.
    let mut conts: Vec<Option<BlockFn>> = vec![None; blocks.len()];
    for (bi, &(start, end)) in blocks.iter().enumerate().rev() {
        // Under specialization, a block the dataflow could not pin (or
        // never reaches) keeps its generic runtime-tested chain.
        let active = match &ka {
            None => None,
            Some(ka) => match ka[bi] {
                KnownActive::Val(a) => Some(a),
                KnownActive::Unseen | KnownActive::Conflict => {
                    let g = generic.expect("spec build passes the generic chains");
                    conts[bi] = Some(g[bi].clone());
                    continue;
                }
            },
        };
        let last = module.ops[(end - 1) as usize];
        let succs = Succs {
            conts: &conts,
            ret_only: &ret_only,
            bi: bi as u32,
            block_of: &block_of,
        };
        // A terminator whose outcome is known at compile time is not a
        // closure at all — the block continues straight into the chosen
        // successor's continuation (an uncharged `Jump` always resolves;
        // flag tests resolve against the tracked word).
        let resolved: Option<Succ> = match (active, last) {
            (_, Op::Jump { target }) => Some(succs.of_pc(target)),
            (Some(a), Op::Guard { mask, target }) => Some(if mask & a != 0 {
                succs.fall()
            } else {
                succs.of_pc(target)
            }),
            (Some(a), Op::SkipInactive { traversal, target }) => {
                Some(if a & (1u64 << traversal) != 0 {
                    succs.fall()
                } else {
                    succs.of_pc(target)
                })
            }
            _ => None,
        };
        let (n_steps, term) = if let Some(s) = resolved {
            (end - 1 - start, succ_chain(s))
        } else if let (Some(a), Op::Deactivate { traversal, target }) = (active, last) {
            // Resolved retraversal: the cleared word is a compile-time
            // constant; store it (call sites read `f.active`) and either
            // return or flow into the next segment's chain.
            let cleared = a & !(1u64 << traversal);
            let term: BlockFn = if cleared == 0 {
                Arc::new(|_, _, _, _| FLOW_RET)
            } else {
                let t = succs.of_pc(target);
                Arc::new(move |jit, st, heap, f| {
                    f.active = cleared;
                    t.go(jit, st, heap, f)
                })
            };
            (end - 1 - start, term)
        } else if is_block_terminator(&last) {
            if let Some(term) = fused_term::<C>(module, known, start, end, &succs) {
                (end - 2 - start, term)
            } else {
                (
                    end - 1 - start,
                    terminator::<C>(module, known, last, &succs),
                )
            }
        } else {
            // The block ends at a jump-target boundary: continue straight
            // into the next block's continuation.
            debug_assert!(bi + 1 < blocks.len(), "fallthrough off the end");
            (end - start, succs.fall_cont())
        };
        // Fuse back-to-front: each step captures its continuation, so the
        // finished block is one closure chain with no interior dispatch,
        // and consecutive register-file ops collapse into single fused
        // runs along the way.
        let mut chain = term;
        let mut run: Vec<(RegOp, u64)> = Vec::new();
        for pc in (start..start + n_steps).rev() {
            let op = module.ops[pc as usize];
            if let Some(ro) = reg_op(module, op) {
                run.push(ro);
                continue;
            }
            chain = flush_reg_run::<C>(&mut run, chain);
            chain = step::<C>(module, known, op, chain);
        }
        chain = flush_reg_run::<C>(&mut run, chain);
        // Probed compile: prepend the block-hit bump *before* storing the
        // continuation, so every capture of this block — forward `Direct`
        // edges, fallthroughs, spec-variant reuse — counts its entries.
        // (Blocks that collapse to `Succ::Ret` are never entered and stay
        // at zero by design.)
        if let Some(pb) = probe_base {
            let slot = pb + bi;
            let inner = chain;
            chain = Arc::new(move |jit, st, heap, f| {
                if let Some(p) = st.probe.as_deref_mut() {
                    p.block(slot);
                }
                inner(jit, st, heap, f)
            });
        }
        conts[bi] = Some(chain);
    }
    conts
        .into_iter()
        .map(|c| c.expect("every block is compiled"))
        .collect()
}

/// A register-file micro-op inside a fused run: every operand, constant
/// coercions included, resolved at compile time.
#[derive(Clone, Copy)]
enum RegOp {
    /// `regs[dst] = v`
    Put { dst: u16, v: Value },
    /// `regs[dst] = co.apply(regs[src])`
    Copy { dst: u16, src: u16, co: Co },
}

/// Classifies a pure register-file op, with its counted-mode instruction
/// charge. These ops touch no heap state, no globals and no
/// cache-visible address — only the `instructions` counter — so a
/// consecutive run of them fuses into one closure performing one bulk
/// charge and a tight loop over a compact micro-op array, instead of one
/// continuation call per op (argument-shuffling runs before grouped
/// calls are the most common op sequence fused traversals lower to).
fn reg_op(module: &Module, op: Op) -> Option<(RegOp, u64)> {
    Some(match op {
        Op::Const { dst, c } => (
            RegOp::Put {
                dst,
                v: module.consts[c as usize],
            },
            0,
        ),
        Op::ConstLoc { dst, c, co } => (
            RegOp::Put {
                dst,
                v: co.apply(module.consts[c as usize]),
            },
            1,
        ),
        Op::Mov { dst, src } => (
            RegOp::Copy {
                dst,
                src,
                co: Co::No,
            },
            1,
        ),
        Op::StoreLocal { dst, src, co } => (RegOp::Copy { dst, src, co }, 1),
        Op::LocLoc { dst, src, co } => (RegOp::Copy { dst, src, co }, 2),
        _ => return None,
    })
}

/// Fuses a pending (reverse-collected) register run into the chain:
/// empty runs pass through, singletons compile to a dedicated closure,
/// longer runs to one looping closure.
fn flush_reg_run<const C: bool>(run: &mut Vec<(RegOp, u64)>, next: BlockFn) -> BlockFn {
    if run.is_empty() {
        return next;
    }
    run.reverse();
    let charge: u64 = run.iter().map(|&(_, c)| c).sum();
    if run.len() == 1 {
        let (op, _) = run.pop().expect("len checked");
        return match op {
            RegOp::Put { dst, v } => Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += charge;
                }
                st.regs[f.base + dst as usize] = v;
                next(jit, st, heap, f)
            }),
            RegOp::Copy { dst, src, co } => Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += charge;
                }
                st.regs[f.base + dst as usize] = co.apply(st.regs[f.base + src as usize]);
                next(jit, st, heap, f)
            }),
        };
    }
    let ops: Box<[RegOp]> = run.drain(..).map(|(o, _)| o).collect();
    Arc::new(move |jit, st, heap, f| {
        if C {
            st.metrics.instructions += charge;
        }
        for op in ops.iter() {
            match *op {
                RegOp::Put { dst, v } => st.regs[f.base + dst as usize] = v,
                RegOp::Copy { dst, src, co } => {
                    st.regs[f.base + dst as usize] = co.apply(st.regs[f.base + src as usize])
                }
            }
        }
        next(jit, st, heap, f)
    })
}

/// A successor as a continuation chain tail (for compile-time-resolved
/// terminators, where the block flows into it with no test and no call).
fn succ_chain(s: Succ) -> BlockFn {
    match s {
        Succ::Direct(cont) => cont,
        Succ::Ret => Arc::new(|_, _, _, _| FLOW_RET),
        Succ::Tramp(b) => Arc::new(move |_, _, _, _| b),
    }
}

// ---- runtime helpers (shared by the compiled closures) -------------------

/// Stashes a failing run's error; always the cold path.
#[cold]
fn flow_fail(st: &mut Machine, e: RuntimeError) -> u32 {
    st.error = Some(e);
    FLOW_ERR
}

#[inline]
fn touch(st: &mut Machine, addr: u64) {
    if let Some(cache) = &mut st.cache {
        cache.access(addr);
    }
}

#[inline]
fn slot_addr(heap: &Heap, node: NodeId, slot: usize) -> u64 {
    heap.addr_of(node) + NODE_HEADER_BYTES + SLOT_BYTES * slot as u64
}

/// Follows a pooled path from `node`; `None` if a step is null. Counted
/// mode charges one instruction + one load and touches each slot, exactly
/// like [`crate::Vm`].
#[inline]
fn navigate<const C: bool>(
    jit: &JitProgram,
    st: &mut Machine,
    heap: &Heap,
    node: NodeId,
    path: &[u32],
) -> RResult<Option<NodeId>> {
    let mut cur = node;
    for &field in path {
        let class = heap.class_of(cur);
        let slot = jit.offset_of(class.index(), field);
        if C {
            st.metrics.instructions += 1;
            st.metrics.loads += 1;
            touch(st, slot_addr(heap, cur, slot));
        }
        match heap.get(cur, slot) {
            Value::Ref(Some(c)) => cur = c,
            Value::Ref(None) => return Ok(None),
            _ => return Err(RuntimeError::NotARef),
        }
    }
    Ok(Some(cur))
}

/// Virtual dispatch through a stub jump table. Counted mode charges the
/// dispatch costs and touches the receiver header; both modes count the
/// visit.
#[inline]
fn dispatch<const C: bool>(
    jit: &JitProgram,
    st: &mut Machine,
    heap: &Heap,
    stub: u16,
    node: NodeId,
) -> RResult<u32> {
    if C {
        st.metrics.instructions += cost::DISPATCH;
        st.metrics.loads += 1;
        touch(st, heap.addr_of(node));
    }
    let class = heap.class_of(node);
    let target = jit.stubs[stub as usize].targets[class.index()];
    if target == NO_TARGET {
        return Err(RuntimeError::MissingTarget(
            jit.class_names[class.index()].clone(),
        ));
    }
    st.metrics.visits += 1;
    Ok(target)
}

/// A grouped call site with its flag computation pre-resolved at compile
/// time: the counted-mode flag-shuffle charge collapses to one bulk add,
/// and when every consulted traversal bit is below 6 the per-part
/// gather loop is replaced by a 64-entry `active → callee flags` table
/// built once per site.
struct CallSite {
    stub: u16,
    parts: Box<[CallPartInfo]>,
    /// Total counted-mode flag-shuffle charge (0 for single-traversal).
    flag_charge: u64,
    /// `active & 63 → flags`, when all part traversals are `< 6`.
    table: Option<Box<[u64]>>,
}

impl CallSite {
    fn new(info: &CallInfo) -> CallSite {
        let flag_charge = if info.charge_flags {
            info.parts.len() as u64 * cost::FLAG_SHUFFLE
        } else {
            0
        };
        let table = info.parts.iter().all(|p| p.traversal < 6).then(|| {
            (0..64u64)
                .map(|active| {
                    let mut flags = 0u64;
                    for (i, part) in info.parts.iter().enumerate() {
                        if active & (1u64 << part.traversal) != 0 {
                            flags |= 1u64 << i;
                        }
                    }
                    flags
                })
                .collect()
        });
        CallSite {
            stub: info.stub,
            parts: info.parts.clone(),
            flag_charge,
            table,
        }
    }

    /// The callee's active-flag word (counted mode charges the flag
    /// shuffling of multi-traversal callers, in one bulk add — the same
    /// total the VM accumulates per part).
    #[inline]
    fn flags<const C: bool>(&self, st: &mut Machine, active: u64) -> u64 {
        if C {
            st.metrics.instructions += self.flag_charge;
        }
        match &self.table {
            Some(t) => t[(active & 63) as usize],
            None => {
                let mut flags = 0u64;
                for (i, part) in self.parts.iter().enumerate() {
                    if active & (1u64 << part.traversal) != 0 {
                        flags |= 1u64 << i;
                    }
                }
                flags
            }
        }
    }
}

/// Pushes the callee frame, copies call arguments into its parameter
/// registers and runs it (argument shuffling is uncharged, as in the VM).
#[inline]
#[allow(clippy::too_many_arguments)]
fn invoke(
    jit: &JitProgram,
    st: &mut Machine,
    heap: &mut Heap,
    target: u32,
    child: NodeId,
    flags: u64,
    parts: &[CallPartInfo],
    args_at: usize,
) -> RResult<()> {
    let callee = &jit.funcs[target as usize];
    // A body that is nothing but `Ret` charges nothing and reads nothing:
    // skip the frame push, argument copy and block run outright (the
    // visit itself was already counted by dispatch).
    if callee.trivial {
        return Ok(());
    }
    let cbase = st.regs.len();
    st.regs
        .resize(cbase + callee.total_regs as usize, Value::Int(0));
    for (i, part) in parts.iter().enumerate() {
        let params = &callee.params[i];
        let n = (part.nargs as usize).min(params.len());
        for k in 0..n {
            st.regs[cbase + params[k] as usize] = st.regs[args_at + part.argbase as usize + k];
        }
    }
    let r = run_func(jit, st, heap, target, child, flags, cbase);
    st.regs.truncate(cbase);
    r
}

/// The full grouped-call sequence: flags, jump-table dispatch, invoke.
#[inline]
fn call_through_stub<const C: bool>(
    jit: &JitProgram,
    st: &mut Machine,
    heap: &mut Heap,
    site: &CallSite,
    child: NodeId,
    active: u64,
    args_at: usize,
) -> RResult<()> {
    let flags = site.flags::<C>(st, active);
    let target = dispatch::<C>(jit, st, heap, site.stub, child)?;
    invoke(jit, st, heap, target, child, flags, &site.parts, args_at)
}

/// Executes one activation of function `fidx`: run block 0, follow the
/// flow codes until the activation returns or fails.
#[inline]
fn run_func(
    jit: &JitProgram,
    st: &mut Machine,
    heap: &mut Heap,
    fidx: u32,
    node: NodeId,
    active: u64,
    base: usize,
) -> RResult<()> {
    if let Some(p) = st.probe.as_deref_mut() {
        p.func(fidx as usize);
    }
    let func = &jit.funcs[fidx as usize];
    let mut blocks = &func.blocks;
    for (w, spec) in func.variants.iter() {
        if *w == active {
            blocks = spec;
            break;
        }
    }
    let mut frame = Frame { node, active, base };
    let mut b = 0u32;
    loop {
        let next = blocks[b as usize](jit, st, heap, &mut frame);
        if next < FLOW_ERR {
            b = next;
        } else if next == FLOW_RET {
            return Ok(());
        } else {
            return Err(st.error.take().expect("FLOW_ERR implies a stashed error"));
        }
    }
}

// ---- per-op closure builders ---------------------------------------------

/// Compiles one straight-line op into a closure that performs the op and
/// continues into `next` — the block's remaining chain — resolving every
/// operand into captured values (slot offsets included, when `known`
/// fixes the receiver layout). `C` (counted) compiles the accounting in
/// or out; there is no mode check and no opcode match at run time.
fn step<const C: bool>(module: &Module, known: Option<usize>, op: Op, next: BlockFn) -> BlockFn {
    match op {
        Op::Const { dst, c } => {
            let v = module.consts[c as usize];
            Arc::new(move |jit, st, heap, f| {
                st.regs[f.base + dst as usize] = v;
                next(jit, st, heap, f)
            })
        }
        Op::Mov { dst, src } => Arc::new(move |jit, st, heap, f| {
            if C {
                st.metrics.instructions += 1;
            }
            st.regs[f.base + dst as usize] = st.regs[f.base + src as usize];
            next(jit, st, heap, f)
        }),
        Op::StoreLocal { dst, src, co } => Arc::new(move |jit, st, heap, f| {
            if C {
                st.metrics.instructions += 1;
            }
            st.regs[f.base + dst as usize] = co.apply(st.regs[f.base + src as usize]);
            next(jit, st, heap, f)
        }),
        Op::Un { op, dst, src } => Arc::new(move |jit, st, heap, f| {
            if C {
                st.metrics.instructions += 1;
            }
            let v = st.regs[f.base + src as usize];
            st.regs[f.base + dst as usize] = unop(op, v);
            next(jit, st, heap, f)
        }),
        Op::Bin { op, dst, a, b } => Arc::new(move |jit, st, heap, f| {
            if C {
                st.metrics.instructions += 1;
            }
            let (l, r) = (st.regs[f.base + a as usize], st.regs[f.base + b as usize]);
            st.regs[f.base + dst as usize] = binop(op, l, r);
            next(jit, st, heap, f)
        }),
        Op::CastBool { reg } => Arc::new(move |jit, st, heap, f| {
            let b = st.regs[f.base + reg as usize].as_bool();
            st.regs[f.base + reg as usize] = Value::Bool(b);
            next(jit, st, heap, f)
        }),
        Op::ReadTree {
            dst,
            path,
            field,
            addend,
        } => {
            let fr = FieldRef::new(module, known, path, field, addend as u32);
            Arc::new(move |jit, st, heap, f| {
                let Some((target, slot)) = fr.locate_strict::<C>(jit, st, heap, f.node) else {
                    return FLOW_ERR;
                };
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.loads += 1;
                    touch(st, slot_addr(heap, target, slot));
                }
                st.regs[f.base + dst as usize] = heap.get(target, slot);
                next(jit, st, heap, f)
            })
        }
        Op::WriteTree {
            src,
            path,
            field,
            addend,
            co,
        } => {
            let fr = FieldRef::new(module, known, path, field, addend as u32);
            Arc::new(move |jit, st, heap, f| {
                let Some((target, slot)) = fr.locate_strict::<C>(jit, st, heap, f.node) else {
                    return FLOW_ERR;
                };
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.stores += 1;
                    touch(st, slot_addr(heap, target, slot));
                }
                heap.set(target, slot, co.apply(st.regs[f.base + src as usize]));
                next(jit, st, heap, f)
            })
        }
        Op::ReadGlobal { dst, idx } => Arc::new(move |jit, st, heap, f| {
            if C {
                st.metrics.instructions += 1;
                st.metrics.loads += 1;
                touch(st, GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
            }
            st.regs[f.base + dst as usize] = st.globals[idx as usize];
            next(jit, st, heap, f)
        }),
        Op::WriteGlobal { src, idx, co } => Arc::new(move |jit, st, heap, f| {
            if C {
                st.metrics.instructions += 1;
                st.metrics.stores += 1;
                touch(st, GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
            }
            st.globals[idx as usize] = co.apply(st.regs[f.base + src as usize]);
            next(jit, st, heap, f)
        }),
        Op::Call {
            call,
            child,
            argbase,
        } => {
            let site = CallSite::new(&module.calls[call as usize]);
            Arc::new(move |jit, st, heap, f| {
                let Value::Ref(Some(child_node)) = st.regs[f.base + child as usize] else {
                    unreachable!("Nav always precedes Call with a live child")
                };
                match call_through_stub::<C>(
                    jit,
                    st,
                    heap,
                    &site,
                    child_node,
                    f.active,
                    f.base + argbase as usize,
                ) {
                    Ok(()) => next(jit, st, heap, f),
                    Err(e) => flow_fail(st, e),
                }
            })
        }
        Op::CallMono {
            call,
            child,
            argbase,
            target,
            class,
        } => {
            let site = CallSite::new(&module.calls[call as usize]);
            Arc::new(move |jit, st, heap, f| {
                let flags = site.flags::<C>(st, f.active);
                let Value::Ref(Some(child_node)) = st.regs[f.base + child as usize] else {
                    unreachable!("Nav always precedes Call with a live child")
                };
                // Devirtualised dispatch: one class check, same charges
                // and touch as the jump-table path.
                if C {
                    st.metrics.instructions += cost::DISPATCH;
                    st.metrics.loads += 1;
                    touch(st, heap.addr_of(child_node));
                }
                let dynamic = heap.class_of(child_node);
                if dynamic.index() != class as usize {
                    return flow_fail(
                        st,
                        RuntimeError::MissingTarget(jit.class_names[dynamic.index()].clone()),
                    );
                }
                st.metrics.visits += 1;
                match invoke(
                    jit,
                    st,
                    heap,
                    target,
                    child_node,
                    flags,
                    &site.parts,
                    f.base + argbase as usize,
                ) {
                    Ok(()) => next(jit, st, heap, f),
                    Err(e) => flow_fail(st, e),
                }
            })
        }
        Op::New { path, field, class } => {
            let fr = FieldRef::new(module, known, path, field, 0);
            let bytes = module.node_bytes[class as usize];
            Arc::new(move |jit, st, heap, f| {
                match fr.locate::<C>(jit, st, heap, f.node) {
                    Err(e) => return flow_fail(st, e),
                    Ok(None) => {}
                    Ok(Some((parent, slot))) => {
                        let fresh = heap.alloc(ClassId(class as u32));
                        if C {
                            st.metrics.instructions += cost::ALLOC;
                            // Constructor initialises the node: touch its
                            // lines.
                            let addr = heap.addr_of(fresh);
                            if let Some(cache) = &mut st.cache {
                                cache.access_range(addr, bytes);
                            }
                            st.metrics.stores += 1 + bytes / SLOT_BYTES;
                            touch(st, slot_addr(heap, parent, slot));
                        }
                        heap.set(parent, slot, Value::Ref(Some(fresh)));
                    }
                }
                next(jit, st, heap, f)
            })
        }
        Op::Delete { path, field } => {
            let fr = FieldRef::new(module, known, path, field, 0);
            Arc::new(move |jit, st, heap, f| {
                match fr.locate::<C>(jit, st, heap, f.node) {
                    Err(e) => return flow_fail(st, e),
                    Ok(None) => {}
                    Ok(Some((parent, slot))) => {
                        if C {
                            st.metrics.loads += 1;
                            touch(st, slot_addr(heap, parent, slot));
                        }
                        if let Value::Ref(Some(victim)) = heap.get(parent, slot) {
                            let freed = heap.delete_subtree(victim);
                            if C {
                                st.metrics.instructions += cost::FREE * freed as u64;
                            }
                        }
                        heap.set(parent, slot, Value::Ref(None));
                        if C {
                            st.metrics.stores += 1;
                        }
                    }
                }
                next(jit, st, heap, f)
            })
        }
        Op::CallPure {
            dst,
            pure,
            base: abase,
            n,
            co,
        } => {
            let name = module.pure_names[pure as usize].clone();
            Arc::new(move |jit, st, heap, f| {
                let Some(func) = st.pures[pure as usize] else {
                    return flow_fail(st, RuntimeError::MissingPure(name.clone()));
                };
                if C {
                    st.metrics.instructions += 1 + n as u64;
                }
                let lo = f.base + abase as usize;
                let out = func(&st.regs[lo..lo + n as usize]);
                st.regs[f.base + dst as usize] = co.apply(out);
                next(jit, st, heap, f)
            })
        }

        // ---- optimizer-introduced ops (charges mirror `crate::Vm`) -----
        Op::FoldedConst { dst, c, charge } => {
            let v = module.consts[c as usize];
            Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += charge as u64;
                }
                st.regs[f.base + dst as usize] = v;
                next(jit, st, heap, f)
            })
        }
        Op::ConstBin { op, dst, a, c } => {
            let r = module.consts[c as usize];
            Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += 1;
                }
                let l = st.regs[f.base + a as usize];
                st.regs[f.base + dst as usize] = binop(op, l, r);
                next(jit, st, heap, f)
            })
        }
        Op::LocBin { op, dst, a, src } => Arc::new(move |jit, st, heap, f| {
            if C {
                st.metrics.instructions += 2; // Mov + Bin
            }
            let (l, r) = (st.regs[f.base + a as usize], st.regs[f.base + src as usize]);
            st.regs[f.base + dst as usize] = binop(op, l, r);
            next(jit, st, heap, f)
        }),
        Op::TreeBin {
            op,
            dst,
            a,
            path,
            field,
            addend,
        } => {
            let fr = FieldRef::new(module, known, path, field, addend as u32);
            Arc::new(move |jit, st, heap, f| {
                let Some((target, slot)) = fr.locate_strict::<C>(jit, st, heap, f.node) else {
                    return FLOW_ERR;
                };
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.loads += 1;
                    touch(st, slot_addr(heap, target, slot));
                }
                let r = heap.get(target, slot);
                if C {
                    st.metrics.instructions += 1; // the fused Bin
                }
                let l = st.regs[f.base + a as usize];
                st.regs[f.base + dst as usize] = binop(op, l, r);
                next(jit, st, heap, f)
            })
        }
        Op::GlobBin { op, dst, a, idx } => Arc::new(move |jit, st, heap, f| {
            if C {
                st.metrics.instructions += 1;
                st.metrics.loads += 1;
                touch(st, GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
            }
            let r = st.globals[idx as usize];
            if C {
                st.metrics.instructions += 1; // the fused Bin
            }
            let l = st.regs[f.base + a as usize];
            st.regs[f.base + dst as usize] = binop(op, l, r);
            next(jit, st, heap, f)
        }),
        Op::BinLoc { op, dst, a, b, co } => Arc::new(move |jit, st, heap, f| {
            if C {
                st.metrics.instructions += 2; // Bin + StoreLocal
            }
            let (l, r) = (st.regs[f.base + a as usize], st.regs[f.base + b as usize]);
            st.regs[f.base + dst as usize] = co.apply(binop(op, l, r));
            next(jit, st, heap, f)
        }),
        Op::BinTree {
            op,
            a,
            b,
            path,
            field,
            addend,
            co,
        } => {
            let fr = FieldRef::new(module, known, path, field, addend as u32);
            Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += 1; // the fused Bin
                }
                let (l, r) = (st.regs[f.base + a as usize], st.regs[f.base + b as usize]);
                let v = binop(op, l, r);
                let Some((target, slot)) = fr.locate_strict::<C>(jit, st, heap, f.node) else {
                    return FLOW_ERR;
                };
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.stores += 1;
                    touch(st, slot_addr(heap, target, slot));
                }
                heap.set(target, slot, co.apply(v));
                next(jit, st, heap, f)
            })
        }
        Op::BinGlob { op, a, b, idx, co } => Arc::new(move |jit, st, heap, f| {
            if C {
                st.metrics.instructions += 1; // the fused Bin
            }
            let (l, r) = (st.regs[f.base + a as usize], st.regs[f.base + b as usize]);
            let v = binop(op, l, r);
            if C {
                st.metrics.instructions += 1;
                st.metrics.stores += 1;
                touch(st, GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
            }
            st.globals[idx as usize] = co.apply(v);
            next(jit, st, heap, f)
        }),
        Op::TreeLoc {
            dst,
            path,
            field,
            addend,
            co,
        } => {
            let fr = FieldRef::new(module, known, path, field, addend as u32);
            Arc::new(move |jit, st, heap, f| {
                let Some((target, slot)) = fr.locate_strict::<C>(jit, st, heap, f.node) else {
                    return FLOW_ERR;
                };
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.loads += 1;
                    touch(st, slot_addr(heap, target, slot));
                }
                let v = heap.get(target, slot);
                if C {
                    st.metrics.instructions += 1; // the fused StoreLocal
                }
                st.regs[f.base + dst as usize] = co.apply(v);
                next(jit, st, heap, f)
            })
        }
        Op::TreeTree {
            rpath,
            rfield,
            raddend,
            wpath,
            wfield,
            waddend,
            co,
        } => {
            let rf = FieldRef::new(module, known, rpath, rfield as u32, raddend as u32);
            let wf = FieldRef::new(module, known, wpath, wfield as u32, waddend as u32);
            Arc::new(move |jit, st, heap, f| {
                let Some((src, slot)) = rf.locate_strict::<C>(jit, st, heap, f.node) else {
                    return FLOW_ERR;
                };
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.loads += 1;
                    touch(st, slot_addr(heap, src, slot));
                }
                let v = heap.get(src, slot);
                let Some((dst, slot)) = wf.locate_strict::<C>(jit, st, heap, f.node) else {
                    return FLOW_ERR;
                };
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.stores += 1;
                    touch(st, slot_addr(heap, dst, slot));
                }
                heap.set(dst, slot, co.apply(v));
                next(jit, st, heap, f)
            })
        }
        Op::ConstTree {
            c,
            path,
            field,
            addend,
            co,
        } => {
            let v = module.consts[c as usize];
            let fr = FieldRef::new(module, known, path, field, addend as u32);
            Arc::new(move |jit, st, heap, f| {
                let Some((target, slot)) = fr.locate_strict::<C>(jit, st, heap, f.node) else {
                    return FLOW_ERR;
                };
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.stores += 1;
                    touch(st, slot_addr(heap, target, slot));
                }
                heap.set(target, slot, co.apply(v));
                next(jit, st, heap, f)
            })
        }
        Op::ConstGlob { c, idx, co } => {
            let v = module.consts[c as usize];
            Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.stores += 1;
                    touch(st, GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
                }
                st.globals[idx as usize] = co.apply(v);
                next(jit, st, heap, f)
            })
        }
        Op::ConstLoc { dst, c, co } => {
            let v = module.consts[c as usize];
            Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += 1;
                }
                st.regs[f.base + dst as usize] = co.apply(v);
                next(jit, st, heap, f)
            })
        }
        Op::LocTree {
            src,
            path,
            field,
            addend,
            co,
        } => {
            let fr = FieldRef::new(module, known, path, field, addend as u32);
            Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += 1; // the fused Mov
                }
                let v = st.regs[f.base + src as usize];
                let Some((target, slot)) = fr.locate_strict::<C>(jit, st, heap, f.node) else {
                    return FLOW_ERR;
                };
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.stores += 1;
                    touch(st, slot_addr(heap, target, slot));
                }
                heap.set(target, slot, co.apply(v));
                next(jit, st, heap, f)
            })
        }
        Op::LocGlob { src, idx, co } => Arc::new(move |jit, st, heap, f| {
            if C {
                st.metrics.instructions += 2; // Mov + WriteGlobal
                st.metrics.stores += 1;
                touch(st, GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
            }
            st.globals[idx as usize] = co.apply(st.regs[f.base + src as usize]);
            next(jit, st, heap, f)
        }),
        Op::LocLoc { dst, src, co } => Arc::new(move |jit, st, heap, f| {
            if C {
                st.metrics.instructions += 2; // Mov + StoreLocal
            }
            st.regs[f.base + dst as usize] = co.apply(st.regs[f.base + src as usize]);
            next(jit, st, heap, f)
        }),

        // Control transfers are block terminators, never mid-block steps.
        Op::Jump { .. }
        | Op::Branch { .. }
        | Op::ShortCircuit { .. }
        | Op::Guard { .. }
        | Op::SkipInactive { .. }
        | Op::Deactivate { .. }
        | Op::Ret
        | Op::Nav { .. }
        | Op::NavCall { .. }
        | Op::BinBranch { .. }
        | Op::ConstBinBranch { .. }
        | Op::LocBinBranch { .. }
        | Op::LocBranch { .. }
        | Op::TreeBranch { .. } => unreachable!("terminator op compiled as a step"),
    }
}

/// Fuses a `ReadTree` feeding straight into a compare-and-branch
/// terminator (the dominant hot pair in branchy traversals: load a
/// field, test it, branch) into one closure. The field register is
/// still written — later blocks may read it — and the charge sequence
/// is the two ops' sequences back to back, so counted mode stays
/// bit-identical.
fn fused_term<const C: bool>(
    module: &Module,
    known: Option<usize>,
    start: u32,
    end: u32,
    succs: &Succs,
) -> Option<BlockFn> {
    if end - start < 2 {
        return None;
    }
    let Op::ReadTree {
        dst,
        path,
        field,
        addend,
    } = module.ops[(end - 2) as usize]
    else {
        return None;
    };
    let fr = FieldRef::new(module, known, path, field, addend as u32);
    match module.ops[(end - 1) as usize] {
        Op::ConstBinBranch { op, a, c, target } if a == dst => {
            let (t, fall) = (succs.of_pc(target), succs.fall());
            let r = module.consts[c as usize];
            Some(Arc::new(move |jit, st, heap, f| {
                let Some((node, slot)) = fr.locate_strict::<C>(jit, st, heap, f.node) else {
                    return FLOW_ERR;
                };
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.loads += 1;
                    touch(st, slot_addr(heap, node, slot));
                }
                let l = heap.get(node, slot);
                st.regs[f.base + dst as usize] = l;
                if C {
                    st.metrics.instructions += 2; // Bin + Branch (Const free)
                }
                if !binop(op, l, r).as_bool() {
                    t.go(jit, st, heap, f)
                } else {
                    fall.go(jit, st, heap, f)
                }
            }))
        }
        Op::BinBranch { op, a, b, target } if a == dst && b != dst => {
            let (t, fall) = (succs.of_pc(target), succs.fall());
            Some(Arc::new(move |jit, st, heap, f| {
                let Some((node, slot)) = fr.locate_strict::<C>(jit, st, heap, f.node) else {
                    return FLOW_ERR;
                };
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.loads += 1;
                    touch(st, slot_addr(heap, node, slot));
                }
                let l = heap.get(node, slot);
                st.regs[f.base + dst as usize] = l;
                if C {
                    st.metrics.instructions += 2; // Bin + Branch
                }
                let r = st.regs[f.base + b as usize];
                if !binop(op, l, r).as_bool() {
                    t.go(jit, st, heap, f)
                } else {
                    fall.go(jit, st, heap, f)
                }
            }))
        }
        _ => None,
    }
}

/// Compiles a block-terminating op into its terminator closure. Jump
/// targets and the fallthrough are resolved through `succs` at compile
/// time: forward successors are captured as direct continuation calls,
/// back edges as trampoline indices.
fn terminator<const C: bool>(
    module: &Module,
    known: Option<usize>,
    op: Op,
    succs: &Succs,
) -> BlockFn {
    match op {
        Op::Jump { target } => {
            let t = succs.of_pc(target);
            Arc::new(move |jit, st, heap, f| t.go(jit, st, heap, f))
        }
        Op::Branch { cond, target } => {
            let (t, fall) = (succs.of_pc(target), succs.fall());
            Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += 1;
                }
                if !st.regs[f.base + cond as usize].as_bool() {
                    t.go(jit, st, heap, f)
                } else {
                    fall.go(jit, st, heap, f)
                }
            })
        }
        Op::ShortCircuit {
            reg,
            jump_if,
            target,
        } => {
            let (t, fall) = (succs.of_pc(target), succs.fall());
            Arc::new(move |jit, st, heap, f| {
                let b = st.regs[f.base + reg as usize].as_bool();
                st.regs[f.base + reg as usize] = Value::Bool(b);
                if C {
                    st.metrics.instructions += 1;
                }
                if b == jump_if {
                    t.go(jit, st, heap, f)
                } else {
                    fall.go(jit, st, heap, f)
                }
            })
        }
        Op::Guard { mask, target } => {
            let (t, fall) = (succs.of_pc(target), succs.fall());
            Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += cost::GUARD;
                }
                if f.active & mask == 0 {
                    t.go(jit, st, heap, f)
                } else {
                    fall.go(jit, st, heap, f)
                }
            })
        }
        Op::SkipInactive { traversal, target } => {
            let (t, fall) = (succs.of_pc(target), succs.fall());
            Arc::new(move |jit, st, heap, f| {
                if f.active & (1u64 << traversal) == 0 {
                    t.go(jit, st, heap, f)
                } else {
                    fall.go(jit, st, heap, f)
                }
            })
        }
        Op::Deactivate { traversal, target } => {
            let t = succs.of_pc(target);
            Arc::new(move |jit, st, heap, f| {
                f.active &= !(1u64 << traversal);
                if f.active == 0 {
                    FLOW_RET
                } else {
                    t.go(jit, st, heap, f)
                }
            })
        }
        Op::Ret => Arc::new(|_, _, _, _| FLOW_RET),
        Op::Nav {
            dst,
            path,
            null_target,
        } => {
            let (t, fall) = (succs.of_pc(null_target), succs.fall());
            let nav = NavRef::new(module, known, path);
            Arc::new(move |jit, st, heap, f| {
                match nav.walk::<C>(jit, st, heap, f.node) {
                    Err(e) => flow_fail(st, e),
                    Ok(None) => t.go(jit, st, heap, f), // traversal stops here
                    Ok(Some(child)) => {
                        st.regs[f.base + dst as usize] = Value::Ref(Some(child));
                        fall.go(jit, st, heap, f)
                    }
                }
            })
        }
        Op::NavCall {
            call,
            path,
            argbase,
            null_target,
        } => {
            let (t, fall) = (succs.of_pc(null_target), succs.fall());
            let nav = NavRef::new(module, known, path);
            let site = CallSite::new(&module.calls[call as usize]);
            Arc::new(move |jit, st, heap, f| {
                match nav.walk::<C>(jit, st, heap, f.node) {
                    Err(e) => flow_fail(st, e),
                    Ok(None) => t.go(jit, st, heap, f), // traversal stops here
                    Ok(Some(child)) => {
                        match call_through_stub::<C>(
                            jit,
                            st,
                            heap,
                            &site,
                            child,
                            f.active,
                            f.base + argbase as usize,
                        ) {
                            Ok(()) => fall.go(jit, st, heap, f),
                            Err(e) => flow_fail(st, e),
                        }
                    }
                }
            })
        }
        Op::BinBranch { op, a, b, target } => {
            let (t, fall) = (succs.of_pc(target), succs.fall());
            Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += 2; // Bin + Branch
                }
                let (l, r) = (st.regs[f.base + a as usize], st.regs[f.base + b as usize]);
                if !binop(op, l, r).as_bool() {
                    t.go(jit, st, heap, f)
                } else {
                    fall.go(jit, st, heap, f)
                }
            })
        }
        Op::ConstBinBranch { op, a, c, target } => {
            let (t, fall) = (succs.of_pc(target), succs.fall());
            let r = module.consts[c as usize];
            Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += 2; // Bin + Branch (Const free)
                }
                let l = st.regs[f.base + a as usize];
                if !binop(op, l, r).as_bool() {
                    t.go(jit, st, heap, f)
                } else {
                    fall.go(jit, st, heap, f)
                }
            })
        }
        Op::LocBinBranch { op, a, src, target } => {
            let (t, fall) = (succs.of_pc(target), succs.fall());
            Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += 3; // Mov + Bin + Branch
                }
                let (l, r) = (st.regs[f.base + a as usize], st.regs[f.base + src as usize]);
                if !binop(op, l, r).as_bool() {
                    t.go(jit, st, heap, f)
                } else {
                    fall.go(jit, st, heap, f)
                }
            })
        }
        Op::LocBranch { src, target } => {
            let (t, fall) = (succs.of_pc(target), succs.fall());
            Arc::new(move |jit, st, heap, f| {
                if C {
                    st.metrics.instructions += 2; // Mov + Branch
                }
                if !st.regs[f.base + src as usize].as_bool() {
                    t.go(jit, st, heap, f)
                } else {
                    fall.go(jit, st, heap, f)
                }
            })
        }
        Op::TreeBranch {
            path,
            field,
            addend,
            target,
        } => {
            let (t, fall) = (succs.of_pc(target), succs.fall());
            let fr = FieldRef::new(module, known, path, field, addend as u32);
            Arc::new(move |jit, st, heap, f| {
                let Some((node_t, slot)) = fr.locate_strict::<C>(jit, st, heap, f.node) else {
                    return FLOW_ERR;
                };
                if C {
                    st.metrics.instructions += 1;
                    st.metrics.loads += 1;
                    touch(st, slot_addr(heap, node_t, slot));
                }
                let v = heap.get(node_t, slot);
                if C {
                    st.metrics.instructions += 1; // the fused Branch
                }
                if !v.as_bool() {
                    t.go(jit, st, heap, f)
                } else {
                    fall.go(jit, st, heap, f)
                }
            })
        }
        other => unreachable!("straight-line op {other:?} compiled as a terminator"),
    }
}

// ---- the executor --------------------------------------------------------

/// Executes a compiled [`JitProgram`] against a [`Heap`] — the native-tier
/// counterpart of [`crate::Vm`], with the same construction and run
/// surface.
pub struct Jit<'a> {
    program: &'a JitProgram,
    st: Machine,
}

impl<'a> Jit<'a> {
    /// Creates an executor with the default math pures and no cache.
    pub fn new(program: &'a JitProgram) -> Self {
        Jit::with_pures(program, PureRegistry::with_math())
    }

    /// Creates an executor with a custom pure-function registry (resolved
    /// to function pointers once, here).
    pub fn with_pures(program: &'a JitProgram, pures: PureRegistry) -> Self {
        let pures = program
            .pure_names
            .iter()
            .map(|name| pures.get(name))
            .collect();
        Jit {
            program,
            st: Machine {
                metrics: Metrics::default(),
                cache: None,
                pures,
                globals: program.globals_init.clone(),
                regs: Vec::new(),
                error: None,
                probe: None,
            },
        }
    }

    /// Attaches zeroed hit counters: subsequent runs record one
    /// activation count per function, and — when the program was compiled
    /// with [`compile_with`] `probed = true` — one entry count per
    /// compiled block. Retrieve them with [`Jit::take_counters`].
    pub fn with_counters(mut self) -> Self {
        self.st.probe = Some(Box::new(self.program.counters()));
        self
    }

    /// Detaches and returns the accumulated hit counters, if
    /// [`Jit::with_counters`] attached any.
    pub fn take_counters(&mut self) -> Option<grafter_obs::ChainCounters> {
        self.st.probe.take().map(|b| *b)
    }

    /// Attaches a cache hierarchy. Only [`JitMode::Counted`] programs
    /// feed it; a release-mode program leaves it untouched.
    pub fn with_cache(mut self, cache: CacheHierarchy) -> Self {
        self.st.cache = Some(cache);
        self
    }

    /// The counters of the last run (all-zero except `visits` in release
    /// mode).
    pub fn metrics(&self) -> &Metrics {
        &self.st.metrics
    }

    /// The simulated cache, when one was attached.
    pub fn cache(&self) -> Option<&CacheHierarchy> {
        self.st.cache.as_ref()
    }

    /// Sets a global variable by name before a run.
    pub fn set_global(&mut self, name: &str, value: Value) -> Option<()> {
        let &(_, idx) = self.program.global_names.iter().find(|(n, _)| n == name)?;
        self.st.globals[idx as usize] = value;
        Some(())
    }

    /// Reads a global variable by name.
    pub fn global(&self, name: &str) -> Option<Value> {
        let &(_, idx) = self.program.global_names.iter().find(|(n, _)| n == name)?;
        Some(self.st.globals[idx as usize])
    }

    /// Runs the program's entry sequence on `root`, exactly as
    /// [`crate::Vm::run`] (same entry grouping, same argument layout).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if execution dereferences a null child
    /// in a data access, calls an unregistered pure, or dispatch fails.
    pub fn run(&mut self, heap: &mut Heap, root: NodeId, args: &[Vec<Value>]) -> RResult<()> {
        let jit = self.program;
        if jit.entries.len() == 1 {
            let n = jit.stubs[jit.entries[0] as usize].n_parts as usize;
            let flags: u64 = (1u64 << n) - 1;
            self.enter(heap, jit.entries[0], root, flags, args)?;
        } else {
            let empty: Vec<Value> = Vec::new();
            for (i, &entry) in jit.entries.iter().enumerate() {
                let part = std::slice::from_ref(args.get(i).unwrap_or(&empty));
                self.enter(heap, entry, root, 0b1, part)?;
            }
        }
        Ok(())
    }

    /// Dispatches one stub call — the worker-side entry for executing a
    /// forked subtree ([`grafter_runtime::ForkTask`]) in the JIT tier.
    /// In counted mode this charges exactly what the in-line call would
    /// have charged from the dispatch onward, matching
    /// [`grafter_runtime::Interp::run_stub`] bit for bit.
    ///
    /// # Errors
    ///
    /// As [`Jit::run`].
    pub fn run_stub(
        &mut self,
        heap: &mut Heap,
        stub: u16,
        node: NodeId,
        flags: u64,
        args: &[Vec<Value>],
    ) -> RResult<()> {
        self.enter(heap, stub, node, flags, args)
    }

    /// The flattened global frame (identical layout across all tiers —
    /// every executor flattens with `flatten_globals`).
    pub fn globals_frame(&self) -> &[Value] {
        &self.st.globals
    }

    /// Overwrites the flattened global frame (fork workers start from the
    /// orchestrator's snapshot).
    pub fn set_globals_frame(&mut self, frame: &[Value]) {
        assert_eq!(frame.len(), self.st.globals.len(), "global frame layout");
        self.st.globals.copy_from_slice(frame);
    }

    /// Entry-point dispatch: arguments arrive as caller-provided vectors,
    /// one per entry part.
    fn enter(
        &mut self,
        heap: &mut Heap,
        stub: u16,
        node: NodeId,
        flags: u64,
        args: &[Vec<Value>],
    ) -> RResult<()> {
        let jit = self.program;
        let st = &mut self.st;
        let fidx = match jit.mode {
            JitMode::Counted => dispatch::<true>(jit, st, heap, stub, node)?,
            JitMode::Release => dispatch::<false>(jit, st, heap, stub, node)?,
        };
        let base = st.regs.len();
        let callee = &jit.funcs[fidx as usize];
        st.regs
            .resize(base + callee.total_regs as usize, Value::Int(0));
        for (ti, params) in callee.params.iter().enumerate() {
            let a = args.get(ti).map(Vec::as_slice).unwrap_or(&[]);
            for (k, &preg) in params.iter().enumerate().take(a.len()) {
                st.regs[base + preg as usize] = a[k];
            }
        }
        let r = run_func(jit, st, heap, fidx, node, flags, base);
        st.regs.truncate(base);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jit_program_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<JitProgram>();
    }

    #[test]
    fn jit_mode_parses_and_displays() {
        assert_eq!("counted".parse::<JitMode>().unwrap(), JitMode::Counted);
        assert_eq!("release".parse::<JitMode>().unwrap(), JitMode::Release);
        assert!("fast".parse::<JitMode>().is_err());
        assert_eq!(JitMode::Counted.to_string(), "counted");
        assert_eq!(JitMode::Release.to_string(), "release");
    }
}
