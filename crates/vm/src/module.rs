//! The lowered bytecode representation: a flat, arena-style module.
//!
//! A [`Module`] is what [`crate::lower`] produces from a
//! [`grafter::FusedProgram`]: every fused function's scheduled body becomes
//! a contiguous range of [`Op`]s in one shared `Vec`, every name lookup the
//! interpreter performs at runtime is resolved to a dense index here —
//!
//! - **registers** replace the interpreter's per-traversal local frames
//!   (one contiguous register window per activation, parameters first,
//!   expression scratch above the locals);
//! - **field offsets** are resolved into a dense `class × field` table, so
//!   a data access is two array indexes instead of a `HashMap` probe;
//! - **dispatch stubs** become per-stub jump tables indexed by the
//!   receiver's dynamic [`ClassId`], replacing the interpreter's linear
//!   `target_for` scan;
//! - **constants** are folded into a deduplicated pool at lowering time.
//!
//! The module is inert data: [`crate::Vm`] executes it against a
//! [`grafter_runtime::Heap`]. [`Module::disassemble`] pretty-prints the
//! whole thing (the `grafterc --emit bytecode` output).

use std::fmt::Write as _;

use grafter_frontend::{BinOp, UnOp};
use grafter_runtime::Value;

/// Coercion applied when a value is stored into a typed location
/// (C++-style implicit int<->float conversion, resolved at lowering time
/// from the declared type of the target).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Co {
    /// Store as-is.
    No,
    /// Truncate floats to int.
    Int,
    /// Promote ints to float.
    Float,
}

impl Co {
    /// Applies the coercion.
    #[inline]
    pub fn apply(self, v: Value) -> Value {
        match (self, v) {
            (Co::Int, Value::Float(f)) => Value::Int(f as i64),
            (Co::Float, Value::Int(i)) => Value::Float(i as f64),
            _ => v,
        }
    }
}

/// One bytecode instruction.
///
/// Register operands are indices into the current activation's register
/// window; `target` operands are absolute program counters within the
/// module's op vector. Pool operands (`path`, `call`, `c`) index the
/// module's side tables.
#[derive(Clone, Copy, Debug)]
pub enum Op {
    /// `r[dst] ← consts[c]` (free: literals cost nothing in the
    /// instruction model).
    Const { dst: u16, c: u16 },
    /// `r[dst] ← r[src]`, charging one instruction (a local-variable read).
    Mov { dst: u16, src: u16 },
    /// `r[dst] ← co(r[src])`, charging one instruction (a local write).
    StoreLocal { dst: u16, src: u16, co: Co },
    /// `r[dst] ← op r[src]`, charging one instruction.
    Un { op: UnOp, dst: u16, src: u16 },
    /// `r[dst] ← r[a] op r[b]`, charging one instruction.
    Bin { op: BinOp, dst: u16, a: u16, b: u16 },
    /// Unconditional jump (free — the interpreter charges the `if` branch
    /// once, on [`Op::Branch`]).
    Jump { target: u32 },
    /// `if` branch: charge one instruction, jump when `r[cond]` is false.
    Branch { cond: u16, target: u32 },
    /// Short-circuit point of `&&`/`||`: normalise `r[reg]` to its boolean,
    /// charge one instruction, and jump when the lhs alone decides the
    /// result (`jump_if` = false for `&&`, true for `||`).
    ShortCircuit {
        reg: u16,
        jump_if: bool,
        target: u32,
    },
    /// Normalise `r[reg]` to `Bool` after a short-circuit rhs (free).
    CastBool { reg: u16 },
    /// Active-flags guard of one scheduled item in a multi-traversal
    /// function: charge [`grafter_runtime::cost::GUARD`], skip the item
    /// when no guarded traversal is active.
    Guard { mask: u64, target: u32 },
    /// Skip argument evaluation of an inactive call part (free).
    SkipInactive { traversal: u8, target: u32 },
    /// `return` of traversal copy `traversal`: clear its active bit; leave
    /// the function when none remain, otherwise skip to the next item.
    Deactivate { traversal: u8, target: u32 },
    /// End of a fused function's body.
    Ret,
    /// Navigate `paths[path]`, then read slot `field (+ addend)` of the
    /// target node into `r[dst]`. Null navigation is a `NullDeref` error.
    ReadTree {
        dst: u16,
        path: u16,
        field: u32,
        addend: u16,
    },
    /// Navigate and write `co(r[src])` into the target slot.
    WriteTree {
        src: u16,
        path: u16,
        field: u32,
        addend: u16,
        co: Co,
    },
    /// `r[dst] ← globals[idx]` (flattened global frame, fully resolved).
    ReadGlobal { dst: u16, idx: u16 },
    /// `globals[idx] ← co(r[src])`.
    WriteGlobal { src: u16, idx: u16, co: Co },
    /// Navigate a grouped call's receiver path into `r[dst]`; a null step
    /// skips the whole item (the traversal stops at this child).
    Nav {
        dst: u16,
        path: u16,
        null_target: u32,
    },
    /// Dispatch `calls[call]` on the child in `r[child]`, with evaluated
    /// arguments starting at `r[argbase]`.
    Call { call: u16, child: u16, argbase: u16 },
    /// `new`: navigate `paths[path]`, allocate `class` into slot `field`
    /// of the parent (no-op when the parent path is null).
    New { path: u16, field: u32, class: u16 },
    /// `delete`: navigate, free the subtree in slot `field`, null it.
    Delete { path: u16, field: u32 },
    /// Call pure `pure` with `n` arguments at `r[base..]`, result (after
    /// `co`) into `r[dst]`.
    CallPure {
        dst: u16,
        pure: u16,
        base: u16,
        n: u8,
        co: Co,
    },
}

/// Sentinel for an absent jump-table entry.
pub(crate) const NO_TARGET: u32 = u32::MAX;

/// Per-function metadata of the lowered module.
#[derive(Clone, Debug)]
pub(crate) struct FuncInfo {
    /// First op of the body.
    pub entry: u32,
    /// One past the last op (for disassembly).
    pub end: u32,
    /// Number of fused traversal copies (`> 1` means guards are emitted).
    pub n_traversals: u8,
    /// Registers holding locals (all traversal frames, concatenated).
    pub frame_regs: u16,
    /// Total register window (locals + expression scratch).
    pub total_regs: u16,
    /// Per traversal copy: frame-relative register of each parameter.
    pub params: Box<[Box<[u16]>]>,
    /// Generated name (mirrors the fused function's).
    pub name: String,
}

/// A lowered dispatch stub: a jump table keyed by dynamic class id.
#[derive(Clone, Debug)]
pub(crate) struct StubInfo {
    /// Number of dispatch slots (= callee traversal copies / entry parts).
    pub n_parts: u8,
    /// Dense `ClassId → function index` table (`NO_TARGET` = unresolvable).
    pub targets: Box<[u32]>,
    /// Generated name (mirrors the stub's).
    pub name: String,
}

/// One part of a lowered grouped call.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CallPartInfo {
    /// Active-flag index in the *caller*.
    pub traversal: u8,
    /// Offset of the part's first argument from the call's `argbase`.
    pub argbase: u16,
    /// Number of arguments evaluated at the call site.
    pub nargs: u8,
}

/// A lowered grouped traversing call.
#[derive(Clone, Debug)]
pub(crate) struct CallInfo {
    /// The stub jump table to dispatch through.
    pub stub: u16,
    /// Whether the caller is multi-traversal (charges flag shuffling).
    pub charge_flags: bool,
    /// The grouped parts; part `i` drives callee flag bit `i`.
    pub parts: Box<[CallPartInfo]>,
}

/// A flat bytecode module lowered from a [`grafter::FusedProgram`].
///
/// Produced by [`crate::lower`]; executed by [`crate::Vm`]. All tables are
/// index-resolved at lowering time so execution performs no name lookups.
#[derive(Clone, Debug)]
pub struct Module {
    pub(crate) ops: Vec<Op>,
    pub(crate) funcs: Vec<FuncInfo>,
    pub(crate) stubs: Vec<StubInfo>,
    pub(crate) calls: Vec<CallInfo>,
    pub(crate) consts: Vec<Value>,
    /// Navigation paths as raw field-id sequences (casts are a
    /// compile-time fiction; navigation only follows child slots).
    pub(crate) paths: Vec<Box<[u32]>>,
    /// Dense `class * n_fields + field → slot` table (`u32::MAX` absent).
    pub(crate) field_offsets: Vec<u32>,
    pub(crate) n_fields: usize,
    /// Byte footprint per class (header + slots), for `new` accounting.
    pub(crate) node_bytes: Vec<u64>,
    /// Initial values of the flattened global frame.
    pub(crate) globals_init: Vec<Value>,
    /// Global name → flat offset (for [`crate::Vm::set_global`]).
    pub(crate) global_names: Vec<(String, u32)>,
    /// Pure-function names by [`grafter_frontend::PureId`] index.
    pub(crate) pure_names: Vec<String>,
    /// Class names by id (diagnostics, disassembly).
    pub(crate) class_names: Vec<String>,
    /// Field names by id (disassembly).
    pub(crate) field_names: Vec<String>,
    /// Entry stubs, in invocation order (one for a fused sequence, one per
    /// traversal for the unfused baseline).
    pub(crate) entries: Vec<u16>,
}

impl Module {
    /// Number of bytecode instructions across all functions.
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of lowered functions.
    pub fn n_functions(&self) -> usize {
        self.funcs.len()
    }

    /// Number of dispatch jump tables.
    pub fn n_stubs(&self) -> usize {
        self.stubs.len()
    }

    /// Slot offset of `field` within dynamic class `class`.
    #[inline]
    pub(crate) fn offset_of(&self, class: usize, field: u32) -> usize {
        let off = self.field_offsets[class * self.n_fields + field as usize];
        debug_assert_ne!(off, u32::MAX, "field not present on class");
        off as usize
    }

    /// Pretty-prints the whole module: functions with addressed ops, stub
    /// jump tables and the constant pool (the `--emit bytecode` format).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; grafter-vm module: {} op(s), {} function(s), {} stub(s), {} const(s)",
            self.ops.len(),
            self.funcs.len(),
            self.stubs.len(),
            self.consts.len()
        );
        let _ = writeln!(
            out,
            "; entries: {}",
            self.entries
                .iter()
                .map(|&s| self.stubs[s as usize].name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        );
        for (i, f) in self.funcs.iter().enumerate() {
            let _ = writeln!(
                out,
                "\nfn {i} {} (traversals={}, locals=r0..r{}, scratch=r{}..r{})",
                f.name,
                f.n_traversals,
                f.frame_regs.saturating_sub(1),
                f.frame_regs,
                f.total_regs.saturating_sub(1),
            );
            for pc in f.entry..f.end {
                let _ = writeln!(out, "  {pc:04}  {}", self.render_op(self.ops[pc as usize]));
            }
        }
        for (i, s) in self.stubs.iter().enumerate() {
            let _ = writeln!(out, "\nstub {i} {} (slots={})", s.name, s.n_parts);
            for (class, &t) in s.targets.iter().enumerate() {
                if t != NO_TARGET {
                    let _ = writeln!(
                        out,
                        "  {:<16} -> fn {} {}",
                        self.class_names[class], t, self.funcs[t as usize].name
                    );
                }
            }
        }
        if !self.consts.is_empty() {
            let _ = writeln!(out, "\nconsts");
            for (i, c) in self.consts.iter().enumerate() {
                let _ = writeln!(out, "  #{i:<3} {c:?}");
            }
        }
        out
    }

    fn render_path(&self, path: u16) -> String {
        let p = &self.paths[path as usize];
        if p.is_empty() {
            "this".to_string()
        } else {
            let mut s = "this".to_string();
            for &f in p.iter() {
                let _ = write!(s, "->{}", self.field_names[f as usize]);
            }
            s
        }
    }

    fn render_op(&self, op: Op) -> String {
        match op {
            Op::Const { dst, c } => {
                format!("const    r{dst} <- #{c} ({:?})", self.consts[c as usize])
            }
            Op::Mov { dst, src } => format!("mov      r{dst} <- r{src}"),
            Op::StoreLocal { dst, src, co } => {
                format!("stloc    r{dst} <- {co:?}(r{src})")
            }
            Op::Un { op, dst, src } => format!("un       r{dst} <- {op:?} r{src}"),
            Op::Bin { op, dst, a, b } => {
                format!("bin      r{dst} <- r{a} {} r{b}", op.symbol())
            }
            Op::Jump { target } => format!("jump     -> {target:04}"),
            Op::Branch { cond, target } => format!("brfalse  r{cond} -> {target:04}"),
            Op::ShortCircuit {
                reg,
                jump_if,
                target,
            } => format!(
                "sc{}     r{reg} -> {target:04}",
                if jump_if { "or " } else { "and" }
            ),
            Op::CastBool { reg } => format!("bool     r{reg}"),
            Op::Guard { mask, target } => format!("guard    mask={mask:#b} else -> {target:04}"),
            Op::SkipInactive { traversal, target } => {
                format!("skipoff  t{traversal} -> {target:04}")
            }
            Op::Deactivate { traversal, target } => {
                format!("retrav   t{traversal} next -> {target:04}")
            }
            Op::Ret => "ret".to_string(),
            Op::ReadTree {
                dst,
                path,
                field,
                addend,
            } => format!(
                "rdtree   r{dst} <- [{}.{}{}]",
                self.render_path(path),
                self.field_names[field as usize],
                if addend > 0 {
                    format!("+{addend}")
                } else {
                    String::new()
                }
            ),
            Op::WriteTree {
                src,
                path,
                field,
                addend,
                co,
            } => format!(
                "wrtree   [{}.{}{}] <- {co:?}(r{src})",
                self.render_path(path),
                self.field_names[field as usize],
                if addend > 0 {
                    format!("+{addend}")
                } else {
                    String::new()
                }
            ),
            Op::ReadGlobal { dst, idx } => format!("rdglob   r{dst} <- g{idx}"),
            Op::WriteGlobal { src, idx, co } => format!("wrglob   g{idx} <- {co:?}(r{src})"),
            Op::Nav {
                dst,
                path,
                null_target,
            } => format!(
                "nav      r{dst} <- {} null-> {null_target:04}",
                self.render_path(path)
            ),
            Op::Call {
                call,
                child,
                argbase,
            } => {
                let info = &self.calls[call as usize];
                format!(
                    "call     {} child=r{child} args@r{argbase} parts={}",
                    self.stubs[info.stub as usize].name,
                    info.parts.len()
                )
            }
            Op::New { path, field, class } => format!(
                "new      [{}.{}] <- {}",
                self.render_path(path),
                self.field_names[field as usize],
                self.class_names[class as usize]
            ),
            Op::Delete { path, field } => format!(
                "delete   [{}.{}]",
                self.render_path(path),
                self.field_names[field as usize]
            ),
            Op::CallPure {
                dst,
                pure,
                base,
                n,
                co,
            } => format!(
                "pure     r{dst} <- {co:?}({}(r{base}..+{n}))",
                self.pure_names[pure as usize]
            ),
        }
    }
}
