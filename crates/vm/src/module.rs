//! The lowered bytecode representation: a flat, arena-style module.
//!
//! A [`Module`] is what [`crate::lower`] produces from a
//! [`grafter::FusedProgram`]: every fused function's scheduled body becomes
//! a contiguous range of [`Op`]s in one shared `Vec`, every name lookup the
//! interpreter performs at runtime is resolved to a dense index here —
//!
//! - **registers** replace the interpreter's per-traversal local frames
//!   (one contiguous register window per activation, parameters first,
//!   expression scratch above the locals);
//! - **field offsets** are resolved into a dense `class × field` table, so
//!   a data access is two array indexes instead of a `HashMap` probe;
//! - **dispatch stubs** become per-stub jump tables indexed by the
//!   receiver's dynamic [`ClassId`], replacing the interpreter's linear
//!   `target_for` scan;
//! - **constants** are folded into a deduplicated pool at lowering time.
//!
//! The module is inert data: [`crate::Vm`] executes it against a
//! [`grafter_runtime::Heap`]. [`Module::disassemble`] pretty-prints the
//! whole thing (the `grafterc --emit bytecode` output).

use std::fmt::Write as _;

use grafter_frontend::{BinOp, UnOp};
use grafter_runtime::Value;

/// Coercion applied when a value is stored into a typed location
/// (C++-style implicit int<->float conversion, resolved at lowering time
/// from the declared type of the target).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Co {
    /// Store as-is.
    No,
    /// Truncate floats to int.
    Int,
    /// Promote ints to float.
    Float,
}

impl Co {
    /// Applies the coercion.
    #[inline]
    pub fn apply(self, v: Value) -> Value {
        match (self, v) {
            (Co::Int, Value::Float(f)) => Value::Int(f as i64),
            (Co::Float, Value::Int(i)) => Value::Float(i as f64),
            _ => v,
        }
    }
}

/// One bytecode instruction.
///
/// Register operands are indices into the current activation's register
/// window; `target` operands are absolute program counters within the
/// module's op vector. Pool operands (`path`, `call`, `c`) index the
/// module's side tables.
#[derive(Clone, Copy, Debug)]
pub enum Op {
    /// `r[dst] ← consts[c]` (free: literals cost nothing in the
    /// instruction model).
    Const { dst: u16, c: u16 },
    /// `r[dst] ← r[src]`, charging one instruction (a local-variable read).
    Mov { dst: u16, src: u16 },
    /// `r[dst] ← co(r[src])`, charging one instruction (a local write).
    StoreLocal { dst: u16, src: u16, co: Co },
    /// `r[dst] ← op r[src]`, charging one instruction.
    Un { op: UnOp, dst: u16, src: u16 },
    /// `r[dst] ← r[a] op r[b]`, charging one instruction.
    Bin { op: BinOp, dst: u16, a: u16, b: u16 },
    /// Unconditional jump (free — the interpreter charges the `if` branch
    /// once, on [`Op::Branch`]).
    Jump { target: u32 },
    /// `if` branch: charge one instruction, jump when `r[cond]` is false.
    Branch { cond: u16, target: u32 },
    /// Short-circuit point of `&&`/`||`: normalise `r[reg]` to its boolean,
    /// charge one instruction, and jump when the lhs alone decides the
    /// result (`jump_if` = false for `&&`, true for `||`).
    ShortCircuit {
        reg: u16,
        jump_if: bool,
        target: u32,
    },
    /// Normalise `r[reg]` to `Bool` after a short-circuit rhs (free).
    CastBool { reg: u16 },
    /// Active-flags guard of one scheduled item in a multi-traversal
    /// function: charge [`grafter_runtime::cost::GUARD`], skip the item
    /// when no guarded traversal is active.
    Guard { mask: u64, target: u32 },
    /// Skip argument evaluation of an inactive call part (free).
    SkipInactive { traversal: u8, target: u32 },
    /// `return` of traversal copy `traversal`: clear its active bit; leave
    /// the function when none remain, otherwise skip to the next item.
    Deactivate { traversal: u8, target: u32 },
    /// End of a fused function's body.
    Ret,
    /// Navigate `paths[path]`, then read slot `field (+ addend)` of the
    /// target node into `r[dst]`. Null navigation is a `NullDeref` error.
    ReadTree {
        dst: u16,
        path: u16,
        field: u32,
        addend: u16,
    },
    /// Navigate and write `co(r[src])` into the target slot.
    WriteTree {
        src: u16,
        path: u16,
        field: u32,
        addend: u16,
        co: Co,
    },
    /// `r[dst] ← globals[idx]` (flattened global frame, fully resolved).
    ReadGlobal { dst: u16, idx: u16 },
    /// `globals[idx] ← co(r[src])`.
    WriteGlobal { src: u16, idx: u16, co: Co },
    /// Navigate a grouped call's receiver path into `r[dst]`; a null step
    /// skips the whole item (the traversal stops at this child).
    Nav {
        dst: u16,
        path: u16,
        null_target: u32,
    },
    /// Dispatch `calls[call]` on the child in `r[child]`, with evaluated
    /// arguments starting at `r[argbase]`.
    Call { call: u16, child: u16, argbase: u16 },
    /// `new`: navigate `paths[path]`, allocate `class` into slot `field`
    /// of the parent (no-op when the parent path is null).
    New { path: u16, field: u32, class: u16 },
    /// `delete`: navigate, free the subtree in slot `field`, null it.
    Delete { path: u16, field: u32 },
    /// Call pure `pure` with `n` arguments at `r[base..]`, result (after
    /// `co`) into `r[dst]`.
    CallPure {
        dst: u16,
        pure: u16,
        base: u16,
        n: u8,
        co: Co,
    },

    // ---- optimizer-introduced ops (see [`crate::opt`]) ----------------
    //
    // Every op below replaces a specific sequence of the base ops above
    // and charges *exactly* the instructions/loads/stores that sequence
    // charged, touching the same simulated addresses in the same order —
    // the optimizer trades dispatch overhead, never observable counters.
    /// `r[dst] ← consts[c]`, charging `charge` instructions — the residue
    /// of a constant-folded expression (the folded operators' charges are
    /// preserved so `Metrics` stay bit-identical to unoptimized code).
    FoldedConst { dst: u16, c: u16, charge: u16 },
    /// Superinstruction `Const + Bin`: `r[dst] ← r[a] op consts[c]`.
    ConstBin { op: BinOp, dst: u16, a: u16, c: u16 },
    /// Superinstruction `Mov + Bin`: `r[dst] ← r[a] op r[src]`.
    LocBin {
        op: BinOp,
        dst: u16,
        a: u16,
        src: u16,
    },
    /// Superinstruction `ReadTree + Bin`:
    /// `r[dst] ← r[a] op [paths[path].field+addend]`.
    TreeBin {
        op: BinOp,
        dst: u16,
        a: u16,
        path: u16,
        field: u32,
        addend: u16,
    },
    /// Superinstruction `ReadGlobal + Bin`: `r[dst] ← r[a] op globals[idx]`.
    GlobBin {
        op: BinOp,
        dst: u16,
        a: u16,
        idx: u16,
    },
    /// Superinstruction `Bin + Branch` (compare-and-branch): evaluate
    /// `r[a] op r[b]`, jump when false.
    BinBranch {
        op: BinOp,
        a: u16,
        b: u16,
        target: u32,
    },
    /// Superinstruction `Const + Bin + Branch` (the kind-tag test
    /// `if (x.kind == K)`): evaluate `r[a] op consts[c]`, jump when false.
    ConstBinBranch {
        op: BinOp,
        a: u16,
        c: u16,
        target: u32,
    },
    /// Superinstruction `Mov + Bin + Branch`: evaluate `r[a] op r[src]`,
    /// jump when false.
    LocBinBranch {
        op: BinOp,
        a: u16,
        src: u16,
        target: u32,
    },
    /// Superinstruction `Mov + Branch` (branch on a local): jump when
    /// `r[src]` is false.
    LocBranch { src: u16, target: u32 },
    /// Superinstruction `ReadTree + Branch` (branch on a field): jump
    /// when `[paths[path].field+addend]` is false.
    TreeBranch {
        path: u16,
        field: u32,
        addend: u16,
        target: u32,
    },
    /// Superinstruction `Mov + WriteTree` (store local to field):
    /// `[paths[path].field+addend] ← co(r[src])`.
    LocTree {
        src: u16,
        path: u16,
        field: u32,
        addend: u16,
        co: Co,
    },
    /// Superinstruction `Mov + WriteGlobal`: `globals[idx] ← co(r[src])`.
    LocGlob { src: u16, idx: u16, co: Co },
    /// Superinstruction `Mov + StoreLocal` (local-to-local copy with
    /// coercion): `r[dst] ← co(r[src])`.
    LocLoc { dst: u16, src: u16, co: Co },
    /// Superinstruction `Bin + StoreLocal`: `r[dst] ← co(r[a] op r[b])`.
    BinLoc {
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
        co: Co,
    },
    /// Superinstruction `Bin + WriteTree` (store-field from accumulator):
    /// `[paths[path].field+addend] ← co(r[a] op r[b])`.
    BinTree {
        op: BinOp,
        a: u16,
        b: u16,
        path: u16,
        field: u32,
        addend: u16,
        co: Co,
    },
    /// Superinstruction `Bin + WriteGlobal`:
    /// `globals[idx] ← co(r[a] op r[b])`.
    BinGlob {
        op: BinOp,
        a: u16,
        b: u16,
        idx: u16,
        co: Co,
    },
    /// Superinstruction `ReadTree + StoreLocal` (load-field + coerce):
    /// `r[dst] ← co([paths[path].field+addend])`.
    TreeLoc {
        dst: u16,
        path: u16,
        field: u32,
        addend: u16,
        co: Co,
    },
    /// Superinstruction `ReadTree + WriteTree` (tree-to-tree field copy):
    /// `[paths[wpath].wfield+waddend] ← co([paths[rpath].rfield+raddend])`.
    /// Field ids are narrowed to `u16` to keep the op slot small; the
    /// optimizer only emits this when both ids fit.
    TreeTree {
        rpath: u16,
        rfield: u16,
        raddend: u16,
        wpath: u16,
        wfield: u16,
        waddend: u16,
        co: Co,
    },
    /// Superinstruction `Const + WriteTree`:
    /// `[paths[path].field+addend] ← co(consts[c])`.
    ConstTree {
        c: u16,
        path: u16,
        field: u32,
        addend: u16,
        co: Co,
    },
    /// Superinstruction `Const + WriteGlobal`:
    /// `globals[idx] ← co(consts[c])`.
    ConstGlob { c: u16, idx: u16, co: Co },
    /// Superinstruction `Const + StoreLocal`: `r[dst] ← co(consts[c])`.
    ConstLoc { dst: u16, c: u16, co: Co },
    /// Devirtualised [`Op::Call`] through a monomorphic stub: the jump
    /// table has a single live entry, so dispatch is one class check plus
    /// a direct jump to function `target` (same charges, same
    /// `MissingTarget` error on a class mismatch).
    CallMono {
        call: u16,
        child: u16,
        argbase: u16,
        target: u32,
        class: u16,
    },
    /// Superinstruction `Nav + Call` (argument-less grouped call, the
    /// hottest pair in every workload): navigate the receiver path and
    /// dispatch in one op, skipping the intermediate child register. A
    /// null step skips the item exactly like [`Op::Nav`].
    NavCall {
        call: u16,
        path: u16,
        argbase: u16,
        null_target: u32,
    },
}

impl Op {
    /// Disassembly mnemonic of this op (the first column of
    /// [`Module::disassemble`] output), used as the histogram key in
    /// probed-run profiles.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Const { .. } => "const",
            Op::Mov { .. } => "mov",
            Op::StoreLocal { .. } => "stloc",
            Op::Un { .. } => "un",
            Op::Bin { .. } => "bin",
            Op::Jump { .. } => "jump",
            Op::Branch { .. } => "brfalse",
            Op::ShortCircuit { jump_if: false, .. } => "scand",
            Op::ShortCircuit { jump_if: true, .. } => "scor",
            Op::CastBool { .. } => "bool",
            Op::Guard { .. } => "guard",
            Op::SkipInactive { .. } => "skipoff",
            Op::Deactivate { .. } => "retrav",
            Op::Ret => "ret",
            Op::ReadTree { .. } => "rdtree",
            Op::WriteTree { .. } => "wrtree",
            Op::ReadGlobal { .. } => "rdglob",
            Op::WriteGlobal { .. } => "wrglob",
            Op::Nav { .. } => "nav",
            Op::Call { .. } => "call",
            Op::New { .. } => "new",
            Op::Delete { .. } => "delete",
            Op::CallPure { .. } => "pure",
            Op::FoldedConst { .. } => "fconst",
            Op::ConstBin { .. } => "bin.c",
            Op::LocBin { .. } => "bin.l",
            Op::TreeBin { .. } => "bin.t",
            Op::GlobBin { .. } => "bin.g",
            Op::BinBranch { .. } => "cmpbr",
            Op::ConstBinBranch { .. } => "cmpbr.c",
            Op::LocBinBranch { .. } => "cmpbr.l",
            Op::LocBranch { .. } => "brfalse.l",
            Op::TreeBranch { .. } => "brfalse.t",
            Op::LocTree { .. } => "wrtree.l",
            Op::LocGlob { .. } => "wrglob.l",
            Op::LocLoc { .. } => "stloc.l",
            Op::BinLoc { .. } => "stloc.b",
            Op::BinTree { .. } => "wrtree.b",
            Op::BinGlob { .. } => "wrglob.b",
            Op::TreeLoc { .. } => "stloc.t",
            Op::TreeTree { .. } => "cptree",
            Op::ConstTree { .. } => "wrtree.c",
            Op::ConstGlob { .. } => "wrglob.c",
            Op::ConstLoc { .. } => "stloc.c",
            Op::NavCall { .. } => "navcall",
            Op::CallMono { .. } => "call.m",
        }
    }

    /// Whether the op is optimizer-introduced (a superinstruction,
    /// folded-constant residue, or devirtualised call) rather than a base
    /// op the lowering pass emits.
    pub fn is_superinstruction(self) -> bool {
        matches!(
            self,
            Op::FoldedConst { .. }
                | Op::ConstBin { .. }
                | Op::LocBin { .. }
                | Op::TreeBin { .. }
                | Op::GlobBin { .. }
                | Op::BinBranch { .. }
                | Op::ConstBinBranch { .. }
                | Op::LocBinBranch { .. }
                | Op::LocBranch { .. }
                | Op::TreeBranch { .. }
                | Op::LocTree { .. }
                | Op::LocGlob { .. }
                | Op::LocLoc { .. }
                | Op::BinLoc { .. }
                | Op::BinTree { .. }
                | Op::BinGlob { .. }
                | Op::TreeLoc { .. }
                | Op::TreeTree { .. }
                | Op::ConstTree { .. }
                | Op::ConstGlob { .. }
                | Op::ConstLoc { .. }
                | Op::NavCall { .. }
                | Op::CallMono { .. }
        )
    }
}

/// Sentinel for an absent jump-table entry.
pub(crate) const NO_TARGET: u32 = u32::MAX;

/// Per-function metadata of the lowered module.
#[derive(Clone, Debug)]
pub(crate) struct FuncInfo {
    /// First op of the body.
    pub entry: u32,
    /// One past the last op (for disassembly).
    pub end: u32,
    /// Number of fused traversal copies (`> 1` means guards are emitted).
    pub n_traversals: u8,
    /// Registers holding locals (all traversal frames, concatenated).
    pub frame_regs: u16,
    /// Total register window (locals + expression scratch).
    pub total_regs: u16,
    /// Per traversal copy: frame-relative register of each parameter.
    pub params: Box<[Box<[u16]>]>,
    /// Generated name (mirrors the fused function's).
    pub name: String,
}

/// A lowered dispatch stub: a jump table keyed by dynamic class id.
#[derive(Clone, Debug)]
pub(crate) struct StubInfo {
    /// Number of dispatch slots (= callee traversal copies / entry parts).
    pub n_parts: u8,
    /// Dense `ClassId → function index` table (`NO_TARGET` = unresolvable).
    pub targets: Box<[u32]>,
    /// Generated name (mirrors the stub's).
    pub name: String,
}

/// One part of a lowered grouped call.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CallPartInfo {
    /// Active-flag index in the *caller*.
    pub traversal: u8,
    /// Offset of the part's first argument from the call's `argbase`.
    pub argbase: u16,
    /// Number of arguments evaluated at the call site.
    pub nargs: u8,
}

/// A lowered grouped traversing call.
#[derive(Clone, Debug)]
pub(crate) struct CallInfo {
    /// The stub jump table to dispatch through.
    pub stub: u16,
    /// Whether the caller is multi-traversal (charges flag shuffling).
    pub charge_flags: bool,
    /// The grouped parts; part `i` drives callee flag bit `i`.
    pub parts: Box<[CallPartInfo]>,
}

/// A flat bytecode module lowered from a [`grafter::FusedProgram`].
///
/// Produced by [`crate::lower`]; executed by [`crate::Vm`]. All tables are
/// index-resolved at lowering time so execution performs no name lookups.
#[derive(Clone, Debug)]
pub struct Module {
    pub(crate) ops: Vec<Op>,
    pub(crate) funcs: Vec<FuncInfo>,
    pub(crate) stubs: Vec<StubInfo>,
    pub(crate) calls: Vec<CallInfo>,
    pub(crate) consts: Vec<Value>,
    /// Navigation paths as raw field-id sequences (casts are a
    /// compile-time fiction; navigation only follows child slots).
    pub(crate) paths: Vec<Box<[u32]>>,
    /// Dense `class * n_fields + field → slot` table (`u32::MAX` absent).
    pub(crate) field_offsets: Vec<u32>,
    pub(crate) n_fields: usize,
    /// Byte footprint per class (header + slots), for `new` accounting.
    pub(crate) node_bytes: Vec<u64>,
    /// Initial values of the flattened global frame.
    pub(crate) globals_init: Vec<Value>,
    /// Global name → flat offset (for [`crate::Vm::set_global`]).
    pub(crate) global_names: Vec<(String, u32)>,
    /// Pure-function names by [`grafter_frontend::PureId`] index.
    pub(crate) pure_names: Vec<String>,
    /// Class names by id (diagnostics, disassembly).
    pub(crate) class_names: Vec<String>,
    /// Field names by id (disassembly).
    pub(crate) field_names: Vec<String>,
    /// Entry stubs, in invocation order (one for a fused sequence, one per
    /// traversal for the unfused baseline).
    pub(crate) entries: Vec<u16>,
    /// What the optimizer did to this module (level + per-pass deltas).
    pub(crate) opt: crate::opt::OptReport,
}

impl Module {
    /// Number of bytecode instructions across all functions.
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of lowered functions.
    pub fn n_functions(&self) -> usize {
        self.funcs.len()
    }

    /// Number of dispatch jump tables.
    pub fn n_stubs(&self) -> usize {
        self.stubs.len()
    }

    /// The optimization report recorded when this module was lowered:
    /// the [`crate::OptLevel`] plus one instruction-count delta per pass.
    pub fn opt_report(&self) -> &crate::opt::OptReport {
        &self.opt
    }

    /// Whether the module contains no executable function — its entry
    /// stubs dispatch to no concrete target, so every run is a no-op (or
    /// a `MissingTarget` error). Reachable by lowering a
    /// [`grafter::fuse_slots`] product whose slots resolve on no concrete
    /// subtype of the root; `grafterc --emit bytecode` warns on it.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Generated name of lowered function `i`.
    pub fn function_name(&self, i: usize) -> &str {
        &self.funcs[i].name
    }

    /// Aggregates raw per-site [`grafter_obs::ExecCounters`] from a probed
    /// VM run into a named [`grafter_obs::TierProfile`]: per-function
    /// activation counts, per-basic-block entry counts (the pc-hit of each
    /// block's leader op), and the per-mnemonic fire histogram with
    /// superinstructions flagged.
    pub fn profile(&self, counters: &grafter_obs::ExecCounters) -> grafter_obs::TierProfile {
        let mut p = grafter_obs::TierProfile::default();
        for (i, f) in self.funcs.iter().enumerate() {
            let hits = counters.func_hits.get(i).copied().unwrap_or(0);
            if hits > 0 {
                p.func_hits.push((f.name.clone(), hits));
            }
        }
        let mut fires: std::collections::BTreeMap<&'static str, (u64, bool)> =
            std::collections::BTreeMap::new();
        for (pc, &op) in self.ops.iter().enumerate() {
            let n = counters.op_hits.get(pc).copied().unwrap_or(0);
            if n > 0 {
                let e = fires.entry(op.mnemonic()).or_insert((0, false));
                e.0 += n;
                e.1 = op.is_superinstruction();
            }
        }
        for (name, (n, is_super)) in fires {
            p.op_fires.push(grafter_obs::OpFire {
                name: name.to_string(),
                fires: n,
                superinstruction: is_super,
            });
        }
        for (i, f) in self.funcs.iter().enumerate() {
            for (bi, &(start, _)) in crate::jit::basic_blocks(self, i).iter().enumerate() {
                let hits = counters.op_hits.get(start as usize).copied().unwrap_or(0);
                if hits > 0 {
                    p.block_hits.push((format!("{}/b{bi}", f.name), hits));
                }
            }
        }
        p
    }

    /// Slot offset of `field` within dynamic class `class`.
    #[inline]
    pub(crate) fn offset_of(&self, class: usize, field: u32) -> usize {
        let off = self.field_offsets[class * self.n_fields + field as usize];
        debug_assert_ne!(off, u32::MAX, "field not present on class");
        off as usize
    }

    /// Pretty-prints the whole module: functions with addressed ops, stub
    /// jump tables and the constant pool (the `--emit bytecode` format).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; grafter-vm module: {} op(s), {} function(s), {} stub(s), {} const(s)",
            self.ops.len(),
            self.funcs.len(),
            self.stubs.len(),
            self.consts.len()
        );
        let _ = writeln!(
            out,
            "; entries: {}",
            self.entries
                .iter()
                .map(|&s| self.stubs[s as usize].name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(out, "; opt: {}", self.opt.level);
        for p in &self.opt.passes {
            let _ = writeln!(
                out,
                ";   {:<9} {:>4} -> {:<4} {}(s) ({} {})",
                p.pass, p.before, p.after, p.unit, p.rewrites, p.action
            );
        }
        for (i, f) in self.funcs.iter().enumerate() {
            let _ = writeln!(
                out,
                "\nfn {i} {} (traversals={}, locals=r0..r{}, scratch=r{}..r{})",
                f.name,
                f.n_traversals,
                f.frame_regs.saturating_sub(1),
                f.frame_regs,
                f.total_regs.saturating_sub(1),
            );
            for pc in f.entry..f.end {
                let _ = writeln!(out, "  {pc:04}  {}", self.render_op(self.ops[pc as usize]));
            }
        }
        for (i, s) in self.stubs.iter().enumerate() {
            let _ = writeln!(out, "\nstub {i} {} (slots={})", s.name, s.n_parts);
            for (class, &t) in s.targets.iter().enumerate() {
                if t != NO_TARGET {
                    let _ = writeln!(
                        out,
                        "  {:<16} -> fn {} {}",
                        self.class_names[class], t, self.funcs[t as usize].name
                    );
                }
            }
        }
        if !self.consts.is_empty() {
            let _ = writeln!(out, "\nconsts");
            for (i, c) in self.consts.iter().enumerate() {
                let _ = writeln!(out, "  #{i:<3} {c:?}");
            }
        }
        out
    }

    /// Pretty-prints the module grouped into basic blocks with CFG edges —
    /// exactly the block structure the [`crate::jit`] tier compiles one
    /// closure per block from (the `--emit bytecode --disasm-blocks`
    /// format).
    ///
    /// Each block line names the function-local block id, its pc range and
    /// its successor edges (`ret` marks an activation exit; `Deactivate`
    /// shows both its next-item edge and the final-traversal `ret`).
    pub fn disassemble_blocks(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; grafter-vm module: {} op(s), {} function(s), {} stub(s), {} const(s)",
            self.ops.len(),
            self.funcs.len(),
            self.stubs.len(),
            self.consts.len()
        );
        let _ = writeln!(
            out,
            "; basic-block view: the CFG the jit tier compiles from"
        );
        let _ = writeln!(out, "; opt: {}", self.opt.level);
        for (i, f) in self.funcs.iter().enumerate() {
            let blocks = crate::jit::basic_blocks(self, i);
            let _ = writeln!(
                out,
                "\nfn {i} {} (traversals={}, {} block(s))",
                f.name,
                f.n_traversals,
                blocks.len()
            );
            let block_of = |pc: u32| {
                blocks
                    .binary_search_by_key(&pc, |&(s, _)| s)
                    .expect("edge lands on a block start")
            };
            for (bi, &(start, end)) in blocks.iter().enumerate() {
                let last = self.ops[(end - 1) as usize];
                let mut succ_pcs = Vec::new();
                crate::opt::successors(end - 1, &last, &mut succ_pcs);
                succ_pcs.retain(|&pc| pc < f.end);
                succ_pcs.dedup();
                let mut edges: Vec<String> = succ_pcs
                    .iter()
                    .map(|&pc| format!("b{}", block_of(pc)))
                    .collect();
                if matches!(last, Op::Ret | Op::Deactivate { .. }) {
                    edges.push("ret".to_string());
                }
                let _ = writeln!(
                    out,
                    "  b{bi}  {start:04}..{end:04}  -> {}",
                    edges.join(", ")
                );
                for pc in start..end {
                    let _ = writeln!(
                        out,
                        "    {pc:04}  {}",
                        self.render_op(self.ops[pc as usize])
                    );
                }
            }
        }
        for (i, s) in self.stubs.iter().enumerate() {
            let _ = writeln!(out, "\nstub {i} {} (slots={})", s.name, s.n_parts);
            for (class, &t) in s.targets.iter().enumerate() {
                if t != NO_TARGET {
                    let _ = writeln!(
                        out,
                        "  {:<16} -> fn {} {}",
                        self.class_names[class], t, self.funcs[t as usize].name
                    );
                }
            }
        }
        out
    }

    fn render_path(&self, path: u16) -> String {
        let p = &self.paths[path as usize];
        if p.is_empty() {
            "this".to_string()
        } else {
            let mut s = "this".to_string();
            for &f in p.iter() {
                let _ = write!(s, "->{}", self.field_names[f as usize]);
            }
            s
        }
    }

    fn render_op(&self, op: Op) -> String {
        match op {
            Op::Const { dst, c } => {
                format!("const    r{dst} <- #{c} ({:?})", self.consts[c as usize])
            }
            Op::Mov { dst, src } => format!("mov      r{dst} <- r{src}"),
            Op::StoreLocal { dst, src, co } => {
                format!("stloc    r{dst} <- {co:?}(r{src})")
            }
            Op::Un { op, dst, src } => format!("un       r{dst} <- {op:?} r{src}"),
            Op::Bin { op, dst, a, b } => {
                format!("bin      r{dst} <- r{a} {} r{b}", op.symbol())
            }
            Op::Jump { target } => format!("jump     -> {target:04}"),
            Op::Branch { cond, target } => format!("brfalse  r{cond} -> {target:04}"),
            Op::ShortCircuit {
                reg,
                jump_if,
                target,
            } => format!(
                "sc{}     r{reg} -> {target:04}",
                if jump_if { "or " } else { "and" }
            ),
            Op::CastBool { reg } => format!("bool     r{reg}"),
            Op::Guard { mask, target } => format!("guard    mask={mask:#b} else -> {target:04}"),
            Op::SkipInactive { traversal, target } => {
                format!("skipoff  t{traversal} -> {target:04}")
            }
            Op::Deactivate { traversal, target } => {
                format!("retrav   t{traversal} next -> {target:04}")
            }
            Op::Ret => "ret".to_string(),
            Op::ReadTree {
                dst,
                path,
                field,
                addend,
            } => format!(
                "rdtree   r{dst} <- [{}.{}{}]",
                self.render_path(path),
                self.field_names[field as usize],
                if addend > 0 {
                    format!("+{addend}")
                } else {
                    String::new()
                }
            ),
            Op::WriteTree {
                src,
                path,
                field,
                addend,
                co,
            } => format!(
                "wrtree   [{}.{}{}] <- {co:?}(r{src})",
                self.render_path(path),
                self.field_names[field as usize],
                if addend > 0 {
                    format!("+{addend}")
                } else {
                    String::new()
                }
            ),
            Op::ReadGlobal { dst, idx } => format!("rdglob   r{dst} <- g{idx}"),
            Op::WriteGlobal { src, idx, co } => format!("wrglob   g{idx} <- {co:?}(r{src})"),
            Op::Nav {
                dst,
                path,
                null_target,
            } => format!(
                "nav      r{dst} <- {} null-> {null_target:04}",
                self.render_path(path)
            ),
            Op::Call {
                call,
                child,
                argbase,
            } => {
                let info = &self.calls[call as usize];
                format!(
                    "call     {} child=r{child} args@r{argbase} parts={}",
                    self.stubs[info.stub as usize].name,
                    info.parts.len()
                )
            }
            Op::New { path, field, class } => format!(
                "new      [{}.{}] <- {}",
                self.render_path(path),
                self.field_names[field as usize],
                self.class_names[class as usize]
            ),
            Op::Delete { path, field } => format!(
                "delete   [{}.{}]",
                self.render_path(path),
                self.field_names[field as usize]
            ),
            Op::CallPure {
                dst,
                pure,
                base,
                n,
                co,
            } => format!(
                "pure     r{dst} <- {co:?}({}(r{base}..+{n}))",
                self.pure_names[pure as usize]
            ),
            Op::FoldedConst { dst, c, charge } => format!(
                "fconst   r{dst} <- #{c} ({:?}) charge={charge}",
                self.consts[c as usize]
            ),
            Op::ConstBin { op, dst, a, c } => format!(
                "bin.c    r{dst} <- r{a} {} #{c} ({:?})",
                op.symbol(),
                self.consts[c as usize]
            ),
            Op::LocBin { op, dst, a, src } => {
                format!("bin.l    r{dst} <- r{a} {} r{src}", op.symbol())
            }
            Op::TreeBin {
                op,
                dst,
                a,
                path,
                field,
                addend,
            } => format!(
                "bin.t    r{dst} <- r{a} {} [{}.{}{}]",
                op.symbol(),
                self.render_path(path),
                self.field_names[field as usize],
                render_addend(addend)
            ),
            Op::GlobBin { op, dst, a, idx } => {
                format!("bin.g    r{dst} <- r{a} {} g{idx}", op.symbol())
            }
            Op::BinBranch { op, a, b, target } => {
                format!("cmpbr    r{a} {} r{b} false-> {target:04}", op.symbol())
            }
            Op::ConstBinBranch { op, a, c, target } => format!(
                "cmpbr.c  r{a} {} #{c} ({:?}) false-> {target:04}",
                op.symbol(),
                self.consts[c as usize]
            ),
            Op::LocBinBranch { op, a, src, target } => {
                format!("cmpbr.l  r{a} {} r{src} false-> {target:04}", op.symbol())
            }
            Op::LocBranch { src, target } => format!("brfalse.l r{src} -> {target:04}"),
            Op::TreeBranch {
                path,
                field,
                addend,
                target,
            } => format!(
                "brfalse.t [{}.{}{}] -> {target:04}",
                self.render_path(path),
                self.field_names[field as usize],
                render_addend(addend)
            ),
            Op::LocTree {
                src,
                path,
                field,
                addend,
                co,
            } => format!(
                "wrtree.l [{}.{}{}] <- {co:?}(r{src})",
                self.render_path(path),
                self.field_names[field as usize],
                render_addend(addend)
            ),
            Op::LocGlob { src, idx, co } => format!("wrglob.l g{idx} <- {co:?}(r{src})"),
            Op::LocLoc { dst, src, co } => format!("stloc.l  r{dst} <- {co:?}(r{src})"),
            Op::BinLoc { op, dst, a, b, co } => {
                format!("stloc.b  r{dst} <- {co:?}(r{a} {} r{b})", op.symbol())
            }
            Op::BinTree {
                op,
                a,
                b,
                path,
                field,
                addend,
                co,
            } => format!(
                "wrtree.b [{}.{}{}] <- {co:?}(r{a} {} r{b})",
                self.render_path(path),
                self.field_names[field as usize],
                render_addend(addend),
                op.symbol()
            ),
            Op::BinGlob { op, a, b, idx, co } => {
                format!("wrglob.b g{idx} <- {co:?}(r{a} {} r{b})", op.symbol())
            }
            Op::TreeLoc {
                dst,
                path,
                field,
                addend,
                co,
            } => format!(
                "stloc.t  r{dst} <- {co:?}([{}.{}{}])",
                self.render_path(path),
                self.field_names[field as usize],
                render_addend(addend)
            ),
            Op::TreeTree {
                rpath,
                rfield,
                raddend,
                wpath,
                wfield,
                waddend,
                co,
            } => format!(
                "cptree   [{}.{}{}] <- {co:?}([{}.{}{}])",
                self.render_path(wpath),
                self.field_names[wfield as usize],
                render_addend(waddend),
                self.render_path(rpath),
                self.field_names[rfield as usize],
                render_addend(raddend)
            ),
            Op::ConstTree {
                c,
                path,
                field,
                addend,
                co,
            } => format!(
                "wrtree.c [{}.{}{}] <- {co:?}(#{c} {:?})",
                self.render_path(path),
                self.field_names[field as usize],
                render_addend(addend),
                self.consts[c as usize]
            ),
            Op::ConstGlob { c, idx, co } => format!(
                "wrglob.c g{idx} <- {co:?}(#{c} {:?})",
                self.consts[c as usize]
            ),
            Op::ConstLoc { dst, c, co } => format!(
                "stloc.c  r{dst} <- {co:?}(#{c} {:?})",
                self.consts[c as usize]
            ),
            Op::NavCall {
                call,
                path,
                argbase,
                null_target,
            } => {
                let info = &self.calls[call as usize];
                format!(
                    "navcall  {} this={} args@r{argbase} parts={} null-> {null_target:04}",
                    self.stubs[info.stub as usize].name,
                    self.render_path(path),
                    info.parts.len()
                )
            }
            Op::CallMono {
                call,
                child,
                argbase,
                target,
                class,
            } => {
                let info = &self.calls[call as usize];
                format!(
                    "call.m   {} child=r{child} args@r{argbase} parts={} {}-> fn {} {}",
                    self.stubs[info.stub as usize].name,
                    info.parts.len(),
                    self.class_names[class as usize],
                    target,
                    self.funcs[target as usize].name
                )
            }
        }
    }
}

/// Renders a slot addend suffix (`+2`), empty when zero.
fn render_addend(addend: u16) -> String {
    if addend > 0 {
        format!("+{addend}")
    } else {
        String::new()
    }
}
