//! Backend selection for the staged pipeline.
//!
//! `grafter-runtime` extends [`Fused`] with the `Execute` stage (the
//! tree-walking interpreter); this module closes the second tier: import
//! [`ExecuteBackend`] and a fused artifact additionally gains
//!
//! - [`ExecuteBackend::run`] — execute on either backend with one
//!   argument: `fused.run(&mut heap, root, Backend::Vm)`
//!   (`Execute::interpret` stays the thin alias for
//!   `run(.., Backend::Interp)`);
//! - [`ExecuteBackend::backend_executor`] — a builder mirroring the
//!   runtime's `Executor` (pures, cache simulation, per-traversal
//!   arguments) that pre-lowers the bytecode module so repeated runs pay
//!   lowering once;
//! - [`ExecuteBackend::lower_module`] — the bare lowered [`Module`] for
//!   disassembly or direct [`Vm`] construction.
//!
//! Runtime failures surface through the same [`DiagnosticBag`]
//! [`Stage::Runtime`] path as the interpreter, whichever backend runs.

use std::fmt;
use std::str::FromStr;

use grafter::pipeline::Fused;
use grafter::DiagnosticBag;
use grafter_cachesim::CacheHierarchy;
#[allow(deprecated)]
use grafter_runtime::{Execute, Heap, Metrics, NodeId, PureRegistry, RunReport, Value};

use crate::exec::Vm;
use crate::jit::{Jit, JitMode, JitProgram};
use crate::lower::lower;
use crate::module::Module;

/// Which execution tier runs a fused artifact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The instrumented tree-walking interpreter (`grafter-runtime`).
    #[default]
    Interp,
    /// The bytecode register VM (`grafter-vm`).
    Vm,
    /// The closure-threaded native tier ([`crate::jit`]): bytecode
    /// pre-compiled into per-basic-block closures, with the
    /// [`JitMode`] choosing bit-identical accounting or flat-out speed.
    Jit(JitMode),
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Backend::Interp => "interp",
            Backend::Vm => "vm",
            Backend::Jit(JitMode::Counted) => "jit",
            Backend::Jit(JitMode::Release) => "jit-release",
        })
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "interp" | "interpreter" => Ok(Backend::Interp),
            "vm" | "bytecode" => Ok(Backend::Vm),
            "jit" | "jit-counted" => Ok(Backend::Jit(JitMode::Counted)),
            "jit-release" => Ok(Backend::Jit(JitMode::Release)),
            other => Err(format!(
                "unknown backend `{other}` (expected interp|vm|jit|jit-release)"
            )),
        }
    }
}

/// Configurable single-run executor over a fused artifact with a backend
/// choice; the two-tier counterpart of [`grafter_runtime::Executor`].
#[deprecated(
    since = "0.2.0",
    note = "select the backend once on `grafter_engine::Engine::builder().backend(..)`; \
            the engine caches the lowered module across all sessions"
)]
#[allow(deprecated)]
pub struct BackendExecutor<'a> {
    fused: &'a Fused,
    backend: Backend,
    /// Pre-lowered module (populated for the compiled tiers at
    /// construction so the measured region of a run excludes compilation).
    module: Option<Module>,
    /// Pre-compiled closure program (populated for [`Backend::Jit`]).
    jit: Option<JitProgram>,
    pures: PureRegistry,
    cache: Option<CacheHierarchy>,
    args: Vec<Vec<Value>>,
}

#[allow(deprecated)]
impl BackendExecutor<'_> {
    /// Replaces the default math pure registry.
    pub fn pures(mut self, pures: PureRegistry) -> Self {
        self.pures = pures;
        self
    }

    /// Attaches a cache hierarchy; every field access is simulated.
    pub fn cache(mut self, cache: CacheHierarchy) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets per-traversal entry arguments.
    pub fn args(mut self, args: Vec<Vec<Value>>) -> Self {
        self.args = args;
        self
    }

    /// Runs the fused program on `root` on the chosen backend, consuming
    /// the executor.
    ///
    /// # Errors
    ///
    /// Returns a [`DiagnosticBag`] tagged `Stage::Runtime` on null
    /// dereferences, missing pure implementations or unresolvable
    /// dispatch — identically for both backends.
    pub fn run(self, heap: &mut Heap, root: NodeId) -> Result<RunReport, DiagnosticBag> {
        match self.backend {
            Backend::Interp => {
                let mut ex = self.fused.executor().pures(self.pures).args(self.args);
                if let Some(cache) = self.cache {
                    ex = ex.cache(cache);
                }
                ex.run(heap, root)
            }
            Backend::Vm => {
                let module = self.module.expect("module lowered at construction");
                let mut vm = Vm::with_pures(&module, self.pures);
                if let Some(cache) = self.cache {
                    vm = vm.with_cache(cache);
                }
                vm.run(heap, root, &self.args)?;
                Ok(RunReport {
                    metrics: vm.metrics,
                    cache: vm.cache.as_ref().map(CacheHierarchy::stats),
                })
            }
            Backend::Jit(_) => {
                let program = self.jit.expect("jit program compiled at construction");
                let mut jit = Jit::with_pures(&program, self.pures);
                if let Some(cache) = self.cache {
                    jit = jit.with_cache(cache);
                }
                jit.run(heap, root, &self.args)?;
                Ok(RunReport {
                    metrics: jit.metrics().clone(),
                    cache: jit.cache().map(CacheHierarchy::stats),
                })
            }
        }
    }
}

/// Backend-selecting execution methods for [`Fused`] pipeline artifacts.
///
/// ```
/// use grafter::pipeline::Pipeline;
/// use grafter_runtime::{Execute, Value};
/// use grafter_vm::{Backend, ExecuteBackend};
///
/// let src = r#"
///     tree class Node {
///         child Node* next;
///         int a = 0;
///         virtual traversal inc() {}
///     }
///     tree class Cons : Node {
///         traversal inc() { a = a + 1; this->next->inc(); }
///     }
///     tree class End : Node { }
/// "#;
/// let fused = Pipeline::compile(src)?.fuse_default("Node", &["inc"])?;
/// let mut heap = fused.new_heap();
/// let end = heap.alloc_by_name("End").unwrap();
/// let cons = heap.alloc_by_name("Cons").unwrap();
/// heap.set_child_by_name(cons, "next", Some(end)).unwrap();
/// let metrics = fused.run(&mut heap, cons, Backend::Vm)?;
/// assert_eq!(metrics.visits, 2);
/// assert_eq!(heap.get_by_name(cons, "a").unwrap(), Value::Int(1));
/// # Ok::<(), grafter::DiagnosticBag>(())
/// ```
///
/// Deprecated: `run`/`run_with_args` re-lower the bytecode module on
/// every call. `grafter_engine::Engine` lowers exactly once at build and
/// shares the immutable module across every session and thread.
#[deprecated(
    since = "0.2.0",
    note = "build a `grafter_engine::Engine` with `.backend(Backend::Vm)`; it lowers \
            the module once and shares it across sessions"
)]
#[allow(deprecated)]
pub trait ExecuteBackend {
    /// Lowers the artifact into a bytecode [`Module`].
    fn lower_module(&self) -> Module;

    /// A [`BackendExecutor`] builder for instrumented runs on `backend`.
    fn backend_executor(&self, backend: Backend) -> BackendExecutor<'_>;

    /// Runs the artifact on `root` with default math pures and no
    /// arguments on the chosen backend, returning the run's metrics.
    /// `Execute::interpret` is the [`Backend::Interp`] special case.
    ///
    /// # Errors
    ///
    /// Returns a [`DiagnosticBag`] tagged `Stage::Runtime` when execution
    /// fails.
    fn run(
        &self,
        heap: &mut Heap,
        root: NodeId,
        backend: Backend,
    ) -> Result<Metrics, DiagnosticBag> {
        self.backend_executor(backend)
            .run(heap, root)
            .map(|r| r.metrics)
    }

    /// Like [`ExecuteBackend::run`] with per-traversal entry arguments.
    ///
    /// # Errors
    ///
    /// Returns a [`DiagnosticBag`] tagged `Stage::Runtime` when execution
    /// fails.
    fn run_with_args(
        &self,
        heap: &mut Heap,
        root: NodeId,
        args: Vec<Vec<Value>>,
        backend: Backend,
    ) -> Result<Metrics, DiagnosticBag> {
        self.backend_executor(backend)
            .args(args)
            .run(heap, root)
            .map(|r| r.metrics)
    }
}

#[allow(deprecated)]
impl ExecuteBackend for Fused {
    fn lower_module(&self) -> Module {
        lower(self.fused_program())
    }

    fn backend_executor(&self, backend: Backend) -> BackendExecutor<'_> {
        let module = match backend {
            Backend::Interp => None,
            Backend::Vm | Backend::Jit(_) => Some(self.lower_module()),
        };
        let jit = match backend {
            Backend::Jit(mode) => module.as_ref().map(|m| crate::jit::compile(m, mode)),
            _ => None,
        };
        BackendExecutor {
            fused: self,
            backend,
            module,
            jit,
            pures: PureRegistry::with_math(),
            cache: None,
            args: Vec::new(),
        }
    }
}
