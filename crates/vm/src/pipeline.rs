//! Execution-tier selection.
//!
//! [`Backend`] names which tier runs a fused artifact; it is configured
//! once on `grafter_engine::Engine::builder().backend(..)`, which lowers
//! the bytecode module (and, on the jit tier, compiles the closure
//! program) exactly once and shares the immutable artifact across every
//! session and thread.

use std::fmt;
use std::str::FromStr;

use crate::jit::JitMode;

/// Which execution tier runs a fused artifact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The instrumented tree-walking interpreter (`grafter-runtime`).
    #[default]
    Interp,
    /// The bytecode register VM (`grafter-vm`).
    Vm,
    /// The closure-threaded native tier ([`crate::jit`]): bytecode
    /// pre-compiled into per-basic-block closures, with the
    /// [`JitMode`] choosing bit-identical accounting or flat-out speed.
    Jit(JitMode),
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Backend::Interp => "interp",
            Backend::Vm => "vm",
            Backend::Jit(JitMode::Counted) => "jit",
            Backend::Jit(JitMode::Release) => "jit-release",
        })
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "interp" | "interpreter" => Ok(Backend::Interp),
            "vm" | "bytecode" => Ok(Backend::Vm),
            "jit" | "jit-counted" => Ok(Backend::Jit(JitMode::Counted)),
            "jit-release" => Ok(Backend::Jit(JitMode::Release)),
            other => Err(format!(
                "unknown backend `{other}` (expected interp|vm|jit|jit-release)"
            )),
        }
    }
}
