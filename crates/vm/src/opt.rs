//! The bytecode optimizer: rewrites a lowered [`Module`] in place.
//!
//! [`crate::lower`] emits naive one-op-per-HIR-node code, so the VM's
//! dispatch loop pays a full `match` round-trip per tiny instruction —
//! the classic interpreter overhead that superinstruction and peephole
//! passes eliminate. [`optimize`] runs up to five passes over a module:
//!
//! 1. **fold** (`O1`) — constant folding: operators whose operands are
//!    statically known collapse into [`Op::FoldedConst`];
//! 2. **peephole** (`O1`) — fusion of hot adjacent pairs into
//!    superinstructions (load-field + coerce, load + binop, compare +
//!    branch, store-field from the accumulator, constant stores);
//! 3. **dce** (`O2`) — dead-register elimination: free ops whose result
//!    register is dead are deleted, jump chains are threaded, and each
//!    function's register window shrinks to what is actually used;
//! 4. **mono** (`O2`) — jump-table compaction: a call through a stub with
//!    a single live target devirtualises into [`Op::CallMono`];
//! 5. **pool** (`O1`) — constant-pool compaction: constants orphaned by
//!    the passes above are dropped and the pool re-deduplicated.
//!
//! **The invariant every pass preserves:** optimized execution is
//! *observationally bit-identical* to unoptimized execution — the same
//! heap snapshots, the same [`grafter_runtime::Metrics`] (every
//! superinstruction charges exactly the instructions/loads/stores of the
//! sequence it replaces), the same simulated cache traffic (same
//! addresses touched in the same order), and the same runtime errors.
//! The optimizer trades *dispatch overhead* — fewer `match` rounds,
//! fewer bounds checks, smaller register windows — never counters. The
//! differential suites (`crates/vm/tests/opt_differential.rs`) assert
//! `O0 == O1 == O2 == interp` across every case-study workload.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use grafter_frontend::{BinOp, UnOp};
use grafter_runtime::ops::{binop, unop, values_equal};
use grafter_runtime::Value;

use crate::module::{CallInfo, Module, Op, NO_TARGET};

/// How hard [`optimize`] works on a lowered module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// No optimization: execute exactly what [`crate::lower`] emitted.
    O0,
    /// Constant folding, peephole superinstructions, pool compaction.
    O1,
    /// `O1` plus dead-register elimination, jump threading, register
    /// window compaction and monomorphic-dispatch devirtualisation.
    #[default]
    O2,
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
        })
    }
}

impl FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "0" | "O0" | "o0" => Ok(OptLevel::O0),
            "1" | "O1" | "o1" => Ok(OptLevel::O1),
            "2" | "O2" | "o2" => Ok(OptLevel::O2),
            other => Err(format!("unknown opt level `{other}` (expected 0|1|2)")),
        }
    }
}

/// Lowering options of the VM tier (the knobs behind
/// `Engine::builder().opt_level(..)` and `grafterc -O{0,1,2}`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmOptions {
    /// Optimization level applied after lowering (default [`OptLevel::O2`]).
    pub opt_level: OptLevel,
}

impl VmOptions {
    /// Options for a specific optimization level.
    pub fn with_opt_level(opt_level: OptLevel) -> Self {
        VmOptions { opt_level }
    }
}

/// One optimization pass's before/after accounting.
#[derive(Clone, Debug)]
pub struct PassStat {
    /// Pass name (`fold`, `peephole`, `dce`, `mono`, `regs`, `pool`).
    pub pass: &'static str,
    /// Count before the pass ran, in `unit`s.
    pub before: usize,
    /// Count after the pass ran, in `unit`s.
    pub after: usize,
    /// What `before`/`after` count (`op`, `reg`, `const`).
    pub unit: &'static str,
    /// How many sites the pass rewrote.
    pub rewrites: usize,
    /// What a rewrite did (`folded`, `fused`, `removed`, ...).
    pub action: &'static str,
    /// Wall time the pass took, in nanoseconds (excluded from equality —
    /// two identical optimizations compare equal across machines).
    pub wall_ns: u64,
}

impl PartialEq for PassStat {
    fn eq(&self, other: &Self) -> bool {
        self.pass == other.pass
            && self.before == other.before
            && self.after == other.after
            && self.unit == other.unit
            && self.rewrites == other.rewrites
            && self.action == other.action
    }
}

impl Eq for PassStat {}

/// What [`optimize`] did to a module: the level plus per-pass deltas
/// (rendered into the disassembly header by [`Module::disassemble`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptReport {
    /// The level the module was optimized at.
    pub level: OptLevel,
    /// Per-pass instruction-count (or pool/register-count) deltas, in
    /// execution order. Empty at [`OptLevel::O0`].
    pub passes: Vec<PassStat>,
}

impl OptReport {
    /// The untouched report recorded at [`OptLevel::O0`].
    pub(crate) fn none() -> Self {
        OptReport {
            level: OptLevel::O0,
            passes: Vec::new(),
        }
    }

    /// Total rewrites across all passes.
    pub fn total_rewrites(&self) -> usize {
        self.passes.iter().map(|p| p.rewrites).sum()
    }
}

/// Optimizes `module` in place at `level` and returns the report.
///
/// `O0` returns immediately; see the [module docs](self) for the pass
/// pipeline and the bit-identity invariant every pass maintains.
pub fn optimize(module: &mut Module, level: OptLevel) -> OptReport {
    if level == OptLevel::O0 {
        return OptReport::none();
    }
    let mut passes = Vec::new();
    passes.push(timed(module, fold_pass));
    passes.push(timed(module, peephole_pass));
    if level >= OptLevel::O2 {
        passes.push(timed(module, dce_pass));
        passes.push(timed(module, regs_pass));
        passes.push(timed(module, mono_pass));
    }
    passes.push(timed(module, pool_pass));
    OptReport { level, passes }
}

/// Runs one pass and stamps its wall time into the stat.
fn timed(module: &mut Module, pass: fn(&mut Module) -> PassStat) -> PassStat {
    let t0 = std::time::Instant::now();
    let mut stat = pass(module);
    stat.wall_ns = t0.elapsed().as_nanos() as u64;
    stat
}

// ---- op classification ---------------------------------------------------

/// Appends the registers `op` reads to `out`.
fn reg_reads(op: &Op, calls: &[CallInfo], out: &mut Vec<u16>) {
    match *op {
        Op::Const { .. }
        | Op::FoldedConst { .. }
        | Op::Jump { .. }
        | Op::Guard { .. }
        | Op::SkipInactive { .. }
        | Op::Deactivate { .. }
        | Op::Ret
        | Op::ReadTree { .. }
        | Op::ReadGlobal { .. }
        | Op::Nav { .. }
        | Op::New { .. }
        | Op::Delete { .. }
        | Op::TreeLoc { .. }
        | Op::TreeTree { .. }
        | Op::TreeBranch { .. }
        | Op::ConstTree { .. }
        | Op::ConstGlob { .. }
        | Op::ConstLoc { .. } => {}
        Op::Mov { src, .. }
        | Op::StoreLocal { src, .. }
        | Op::Un { src, .. }
        | Op::WriteTree { src, .. }
        | Op::WriteGlobal { src, .. }
        | Op::LocBranch { src, .. }
        | Op::LocTree { src, .. }
        | Op::LocGlob { src, .. }
        | Op::LocLoc { src, .. } => out.push(src),
        Op::Bin { a, b, .. } | Op::BinBranch { a, b, .. } => out.extend([a, b]),
        Op::BinLoc { a, b, .. } | Op::BinTree { a, b, .. } | Op::BinGlob { a, b, .. } => {
            out.extend([a, b])
        }
        Op::ConstBin { a, .. }
        | Op::TreeBin { a, .. }
        | Op::GlobBin { a, .. }
        | Op::ConstBinBranch { a, .. } => out.push(a),
        Op::LocBin { a, src, .. } | Op::LocBinBranch { a, src, .. } => out.extend([a, src]),
        Op::Branch { cond, .. } => out.push(cond),
        Op::ShortCircuit { reg, .. } | Op::CastBool { reg } => out.push(reg),
        Op::Call {
            call,
            child,
            argbase,
        }
        | Op::CallMono {
            call,
            child,
            argbase,
            ..
        } => {
            out.push(child);
            for part in calls[call as usize].parts.iter() {
                for k in 0..part.nargs as u16 {
                    out.push(argbase + part.argbase + k);
                }
            }
        }
        Op::NavCall { call, argbase, .. } => {
            for part in calls[call as usize].parts.iter() {
                for k in 0..part.nargs as u16 {
                    out.push(argbase + part.argbase + k);
                }
            }
        }
        Op::CallPure { base, n, .. } => out.extend((0..n as u16).map(|k| base + k)),
    }
}

/// The register `op` writes, if any.
fn reg_write(op: &Op) -> Option<u16> {
    match *op {
        Op::Const { dst, .. }
        | Op::FoldedConst { dst, .. }
        | Op::Mov { dst, .. }
        | Op::StoreLocal { dst, .. }
        | Op::Un { dst, .. }
        | Op::Bin { dst, .. }
        | Op::ConstBin { dst, .. }
        | Op::LocBin { dst, .. }
        | Op::TreeBin { dst, .. }
        | Op::GlobBin { dst, .. }
        | Op::BinLoc { dst, .. }
        | Op::ReadTree { dst, .. }
        | Op::ReadGlobal { dst, .. }
        | Op::Nav { dst, .. }
        | Op::TreeLoc { dst, .. }
        | Op::ConstLoc { dst, .. }
        | Op::LocLoc { dst, .. }
        | Op::CallPure { dst, .. } => Some(dst),
        Op::ShortCircuit { reg, .. } | Op::CastBool { reg } => Some(reg),
        _ => None,
    }
}

/// The jump target embedded in `op`, if any.
pub(crate) fn op_target(op: &Op) -> Option<u32> {
    match *op {
        Op::Jump { target }
        | Op::Branch { target, .. }
        | Op::ShortCircuit { target, .. }
        | Op::Guard { target, .. }
        | Op::SkipInactive { target, .. }
        | Op::Deactivate { target, .. }
        | Op::BinBranch { target, .. }
        | Op::ConstBinBranch { target, .. }
        | Op::LocBinBranch { target, .. }
        | Op::LocBranch { target, .. }
        | Op::TreeBranch { target, .. }
        | Op::Nav {
            null_target: target,
            ..
        }
        | Op::NavCall {
            null_target: target,
            ..
        } => Some(target),
        _ => None,
    }
}

/// Rewrites the jump target embedded in `op` through `f`.
fn map_target(op: &mut Op, f: impl Fn(u32) -> u32) {
    match op {
        Op::Jump { target }
        | Op::Branch { target, .. }
        | Op::ShortCircuit { target, .. }
        | Op::Guard { target, .. }
        | Op::SkipInactive { target, .. }
        | Op::Deactivate { target, .. }
        | Op::BinBranch { target, .. }
        | Op::ConstBinBranch { target, .. }
        | Op::LocBinBranch { target, .. }
        | Op::LocBranch { target, .. }
        | Op::TreeBranch { target, .. }
        | Op::Nav {
            null_target: target,
            ..
        }
        | Op::NavCall {
            null_target: target,
            ..
        } => *target = f(*target),
        _ => {}
    }
}

/// Successor pcs of the op at `pc` (within its function body).
pub(crate) fn successors(pc: u32, op: &Op, out: &mut Vec<u32>) {
    match *op {
        Op::Jump { target } | Op::Deactivate { target, .. } => out.push(target),
        Op::Ret => {}
        Op::Branch { target, .. }
        | Op::ShortCircuit { target, .. }
        | Op::Guard { target, .. }
        | Op::SkipInactive { target, .. }
        | Op::BinBranch { target, .. }
        | Op::ConstBinBranch { target, .. }
        | Op::LocBinBranch { target, .. }
        | Op::LocBranch { target, .. }
        | Op::TreeBranch { target, .. }
        | Op::Nav {
            null_target: target,
            ..
        }
        | Op::NavCall {
            null_target: target,
            ..
        } => out.extend([pc + 1, target]),
        _ => out.push(pc + 1),
    }
}

/// Per-op register liveness of one function body, from a standard
/// backward dataflow fixpoint over the op-level control-flow graph.
struct Liveness {
    entry: u32,
    words: usize,
    /// `live_out[pc - entry]`: registers read on some path after `pc`.
    live_out: Vec<Vec<u64>>,
}

impl Liveness {
    fn compute(ops: &[Op], calls: &[CallInfo], entry: u32, end: u32, total_regs: u16) -> Self {
        let n = (end - entry) as usize;
        let words = (total_regs as usize).div_ceil(64).max(1);
        let mut live_in = vec![vec![0u64; words]; n];
        let mut live_out = vec![vec![0u64; words]; n];
        let mut reads = Vec::new();
        let mut succs = Vec::new();
        let mut changed = true;
        while changed {
            changed = false;
            for pc in (entry..end).rev() {
                let i = (pc - entry) as usize;
                let op = &ops[pc as usize];
                succs.clear();
                successors(pc, op, &mut succs);
                let mut out = vec![0u64; words];
                for &s in &succs {
                    if (entry..end).contains(&s) {
                        let si = (s - entry) as usize;
                        for (w, v) in out.iter_mut().zip(&live_in[si]) {
                            *w |= *v;
                        }
                    }
                }
                let mut inn = out.clone();
                if let Some(w) = reg_write(op) {
                    inn[w as usize / 64] &= !(1u64 << (w % 64));
                }
                reads.clear();
                reg_reads(op, calls, &mut reads);
                for &r in &reads {
                    inn[r as usize / 64] |= 1u64 << (r % 64);
                }
                if out != live_out[i] || inn != live_in[i] {
                    changed = true;
                    live_out[i] = out;
                    live_in[i] = inn;
                }
            }
        }
        Liveness {
            entry,
            words,
            live_out,
        }
    }

    /// Is `reg` read on some path after the op at `pc` executes?
    fn live_after(&self, pc: u32, reg: u16) -> bool {
        debug_assert!((reg as usize) < self.words * 64);
        self.live_out[(pc - self.entry) as usize][reg as usize / 64] & (1u64 << (reg % 64)) != 0
    }
}

/// Pcs that some jump lands on (function entries included): a fusion must
/// not swallow an op that control can enter mid-pair.
fn jump_target_flags(module: &Module) -> Vec<bool> {
    let mut flags = vec![false; module.ops.len() + 1];
    for op in &module.ops {
        if let Some(t) = op_target(op) {
            flags[t as usize] = true;
        }
    }
    for f in &module.funcs {
        flags[f.entry as usize] = true;
    }
    flags
}

/// Removes ops flagged in `deleted`, remapping every jump target and
/// function boundary. A deleted op that is itself a jump target must be
/// effect-free: landing jumps are redirected to the next surviving op.
fn compact(module: &mut Module, deleted: &[bool]) {
    let n = module.ops.len();
    let mut new_pc = vec![0u32; n + 1];
    let mut cur = 0u32;
    for i in 0..n {
        new_pc[i] = cur;
        if !deleted[i] {
            cur += 1;
        }
    }
    new_pc[n] = cur;
    let mut ops = Vec::with_capacity(cur as usize);
    for (i, op) in module.ops.iter().enumerate() {
        if !deleted[i] {
            let mut op = *op;
            map_target(&mut op, |t| new_pc[t as usize]);
            ops.push(op);
        }
    }
    module.ops = ops;
    for f in &mut module.funcs {
        f.entry = new_pc[f.entry as usize];
        f.end = new_pc[f.end as usize];
    }
}

// ---- pass 1: constant folding --------------------------------------------

/// Interns `v` into the module's constant pool (bit-level float identity,
/// so folding never conflates `0.0` and `-0.0` or distinct NaNs).
fn intern_const(module: &mut Module, v: Value) -> Option<u16> {
    let same = |a: &Value, b: &Value| match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => false,
    };
    if let Some(i) = module.consts.iter().position(|c| same(c, &v)) {
        return Some(i as u16);
    }
    if module.consts.len() >= u16::MAX as usize {
        return None; // pool full: skip the fold rather than overflow
    }
    module.consts.push(v);
    Some((module.consts.len() - 1) as u16)
}

/// Folds `op l r` when the result is statically computable with exactly
/// the runtime's semantics. Operand kinds the kernel would panic on are
/// left unfolded so the panic still happens at run time.
fn fold_binop(op: BinOp, l: Value, r: Value) -> Option<Value> {
    let numeric = |v: Value| matches!(v, Value::Int(_) | Value::Float(_));
    match op {
        BinOp::Add
        | BinOp::Sub
        | BinOp::Mul
        | BinOp::Div
        | BinOp::Rem
        | BinOp::Lt
        | BinOp::Le
        | BinOp::Gt
        | BinOp::Ge => (numeric(l) && numeric(r)).then(|| binop(op, l, r)),
        BinOp::Eq | BinOp::Ne => {
            let comparable =
                matches!((l, r), (Value::Bool(_), Value::Bool(_))) || (numeric(l) && numeric(r));
            comparable.then(|| Value::Bool(values_equal(l, r) == (op == BinOp::Eq)))
        }
        BinOp::And | BinOp::Or => None, // short-circuited before lowering
    }
}

/// Folds `op v` through the runtime's unary kernel when the operand
/// kind is legal for the operator (illegal kinds stay unfolded so the
/// kernel's panic still happens at run time).
fn fold_unop(op: UnOp, v: Value) -> Option<Value> {
    let legal = match op {
        UnOp::Neg => matches!(v, Value::Int(_) | Value::Float(_)),
        UnOp::Not => matches!(v, Value::Bool(_)),
    };
    legal.then(|| unop(op, v))
}

/// Constant folding: inside each basic block, registers holding known
/// constants flow into `Un`/`Bin` operators, which collapse to
/// [`Op::FoldedConst`] carrying the operator's original instruction
/// charge (the producing `Const`s stay behind — they are free — and are
/// swept by `dce` at `O2`).
fn fold_pass(module: &mut Module) -> PassStat {
    let before = module.ops.len();
    let targets = jump_target_flags(module);
    let mut rewrites = 0usize;
    for fi in 0..module.funcs.len() {
        let (entry, end) = (module.funcs[fi].entry, module.funcs[fi].end);
        let mut known: HashMap<u16, Value> = HashMap::new();
        for pc in entry..end {
            if targets[pc as usize] {
                known.clear(); // block boundary: control may enter here
            }
            let op = module.ops[pc as usize];
            match op {
                Op::Const { dst, c } | Op::FoldedConst { dst, c, .. } => {
                    known.insert(dst, module.consts[c as usize]);
                }
                Op::Un { op: uo, dst, src } => {
                    let folded = known
                        .get(&src)
                        .and_then(|&v| fold_unop(uo, v))
                        .and_then(|v| intern_const(module, v).map(|c| (v, c)));
                    match folded {
                        Some((v, c)) => {
                            module.ops[pc as usize] = Op::FoldedConst { dst, c, charge: 1 };
                            known.insert(dst, v);
                            rewrites += 1;
                        }
                        None => {
                            known.remove(&dst);
                        }
                    }
                }
                Op::Bin { op: bo, dst, a, b } => {
                    let folded = match (known.get(&a), known.get(&b)) {
                        (Some(&l), Some(&r)) => fold_binop(bo, l, r)
                            .and_then(|v| intern_const(module, v).map(|c| (v, c))),
                        _ => None,
                    };
                    match folded {
                        Some((v, c)) => {
                            module.ops[pc as usize] = Op::FoldedConst { dst, c, charge: 1 };
                            known.insert(dst, v);
                            rewrites += 1;
                        }
                        None => {
                            known.remove(&dst);
                        }
                    }
                }
                other => {
                    if let Some(w) = reg_write(&other) {
                        known.remove(&w);
                    }
                }
            }
        }
    }
    PassStat {
        wall_ns: 0,
        pass: "fold",
        before,
        after: module.ops.len(),
        unit: "op",
        rewrites,
        action: "folded",
    }
}

// ---- pass 2: peephole superinstructions ----------------------------------

/// Fuses the adjacent pair `(a, b)` into one superinstruction, or `None`.
///
/// Every fusion requires that the intermediate register the pair
/// communicates through is dead after `b` (checked by the caller via
/// liveness) — the condition is passed in as `dead` to keep this a pure
/// pattern match.
fn fuse_pair(a: Op, b: Op, dead: impl Fn(u16) -> bool) -> Option<Op> {
    match (a, b) {
        // ---- producer feeding a binop's rhs ----
        (Op::Const { dst: r, c }, Op::Bin { op, dst, a, b }) if b == r && a != r && dead(r) => {
            Some(Op::ConstBin { op, dst, a, c })
        }
        (Op::Mov { dst: r, src }, Op::Bin { op, dst, a, b }) if b == r && a != r && dead(r) => {
            Some(Op::LocBin { op, dst, a, src })
        }
        (
            Op::ReadTree {
                dst: r,
                path,
                field,
                addend,
            },
            Op::Bin { op, dst, a, b },
        ) if b == r && a != r && dead(r) => Some(Op::TreeBin {
            op,
            dst,
            a,
            path,
            field,
            addend,
        }),
        (Op::ReadGlobal { dst: r, idx }, Op::Bin { op, dst, a, b })
            if b == r && a != r && dead(r) =>
        {
            Some(Op::GlobBin { op, dst, a, idx })
        }
        // ---- binop feeding a consumer ----
        (Op::Bin { op, dst: r, a, b }, Op::Branch { cond, target }) if cond == r && dead(r) => {
            Some(Op::BinBranch { op, a, b, target })
        }
        // Second-round patterns: a fused compare feeding a branch (the
        // kind-tag test `if (x.kind == K)` fuses Const+Bin in round one,
        // then ConstBin+Branch here).
        (Op::ConstBin { op, dst: r, a, c }, Op::Branch { cond, target })
            if cond == r && dead(r) =>
        {
            Some(Op::ConstBinBranch { op, a, c, target })
        }
        (Op::LocBin { op, dst: r, a, src }, Op::Branch { cond, target })
            if cond == r && dead(r) =>
        {
            Some(Op::LocBinBranch { op, a, src, target })
        }
        (Op::Mov { dst: r, src }, Op::Branch { cond, target }) if cond == r && dead(r) => {
            Some(Op::LocBranch { src, target })
        }
        (
            Op::ReadTree {
                dst: r,
                path,
                field,
                addend,
            },
            Op::Branch { cond, target },
        ) if cond == r && dead(r) => Some(Op::TreeBranch {
            path,
            field,
            addend,
            target,
        }),
        (Op::Bin { op, dst: r, a, b }, Op::StoreLocal { dst, src, co }) if src == r && dead(r) => {
            Some(Op::BinLoc { op, dst, a, b, co })
        }
        (
            Op::Bin { op, dst: r, a, b },
            Op::WriteTree {
                src,
                path,
                field,
                addend,
                co,
            },
        ) if src == r && dead(r) => Some(Op::BinTree {
            op,
            a,
            b,
            path,
            field,
            addend,
            co,
        }),
        (Op::Bin { op, dst: r, a, b }, Op::WriteGlobal { src, idx, co }) if src == r && dead(r) => {
            Some(Op::BinGlob { op, a, b, idx, co })
        }
        // ---- receiver navigation feeding an argument-less call ----
        (
            Op::Nav {
                dst: r,
                path,
                null_target,
            },
            Op::Call {
                call,
                child,
                argbase,
            },
        ) if child == r && dead(r) => Some(Op::NavCall {
            call,
            path,
            argbase,
            null_target,
        }),
        // ---- straight copies ----
        (
            Op::ReadTree {
                dst: r,
                path,
                field,
                addend,
            },
            Op::StoreLocal { dst, src, co },
        ) if src == r && dead(r) => Some(Op::TreeLoc {
            dst,
            path,
            field,
            addend,
            co,
        }),
        (
            Op::ReadTree {
                dst: r,
                path: rpath,
                field: rfield,
                addend: raddend,
            },
            Op::WriteTree {
                src,
                path: wpath,
                field: wfield,
                addend: waddend,
                co,
            },
        ) if src == r && dead(r) && rfield <= u16::MAX as u32 && wfield <= u16::MAX as u32 => {
            Some(Op::TreeTree {
                rpath,
                rfield: rfield as u16,
                raddend,
                wpath,
                wfield: wfield as u16,
                waddend,
                co,
            })
        }
        (
            Op::Const { dst: r, c },
            Op::WriteTree {
                src,
                path,
                field,
                addend,
                co,
            },
        ) if src == r && dead(r) => Some(Op::ConstTree {
            c,
            path,
            field,
            addend,
            co,
        }),
        (Op::Const { dst: r, c }, Op::WriteGlobal { src, idx, co }) if src == r && dead(r) => {
            Some(Op::ConstGlob { c, idx, co })
        }
        (Op::Const { dst: r, c }, Op::StoreLocal { dst, src, co }) if src == r && dead(r) => {
            Some(Op::ConstLoc { dst, c, co })
        }
        (
            Op::Mov { dst: r, src },
            Op::WriteTree {
                src: wsrc,
                path,
                field,
                addend,
                co,
            },
        ) if wsrc == r && src != r && dead(r) => Some(Op::LocTree {
            src,
            path,
            field,
            addend,
            co,
        }),
        (Op::Mov { dst: r, src }, Op::WriteGlobal { src: wsrc, idx, co })
            if wsrc == r && src != r && dead(r) =>
        {
            Some(Op::LocGlob { src, idx, co })
        }
        (Op::Mov { dst: r, src }, Op::StoreLocal { dst, src: ssrc, co })
            if ssrc == r && src != r && dead(r) =>
        {
            Some(Op::LocLoc { dst, src, co })
        }
        _ => None,
    }
}

/// Peephole fusion of adjacent op pairs into superinstructions, iterated
/// to a fixpoint (a round-one superinstruction can fuse again — e.g.
/// `Const+Bin` → `ConstBin`, then `ConstBin+Branch` → `ConstBinBranch`).
///
/// A pair fuses only when (a) the second op is not a jump target (control
/// could enter mid-pair) and (b) the register the pair communicates
/// through is dead afterwards, per the function's liveness solution. The
/// replacement charges exactly what the pair charged.
fn peephole_pass(module: &mut Module) -> PassStat {
    let before = module.ops.len();
    let mut rewrites = 0usize;
    loop {
        let round = peephole_round(module);
        rewrites += round;
        if round == 0 {
            break;
        }
    }
    PassStat {
        wall_ns: 0,
        pass: "peephole",
        before,
        after: module.ops.len(),
        unit: "op",
        rewrites,
        action: "fused",
    }
}

/// One scan-and-compact round of the peephole pass; returns the number
/// of pairs fused.
fn peephole_round(module: &mut Module) -> usize {
    let targets = jump_target_flags(module);
    let mut deleted = vec![false; module.ops.len()];
    let mut rewrites = 0usize;
    for fi in 0..module.funcs.len() {
        let (entry, end, total_regs) = {
            let f = &module.funcs[fi];
            (f.entry, f.end, f.total_regs)
        };
        let live = Liveness::compute(&module.ops, &module.calls, entry, end, total_regs);
        let mut pc = entry;
        while pc + 1 < end {
            if deleted[pc as usize] {
                pc += 1;
                continue;
            }
            if targets[(pc + 1) as usize] {
                pc += 1;
                continue;
            }
            let (a, b) = (module.ops[pc as usize], module.ops[(pc + 1) as usize]);
            if let Some(fused) = fuse_pair(a, b, |r| !live.live_after(pc + 1, r)) {
                module.ops[pc as usize] = fused;
                deleted[(pc + 1) as usize] = true;
                rewrites += 1;
                pc += 2;
            } else {
                pc += 1;
            }
        }
    }
    compact(module, &deleted);
    rewrites
}

// ---- pass 3: dead-register elimination -----------------------------------

/// Dead-register elimination and jump threading.
///
/// Only *free* ops are ever deleted — `Const`/`CastBool` writing a dead
/// register, `Jump`s to the next pc — so `Metrics` cannot change; charged
/// dead stores stay behind precisely because removing them would. Jump
/// chains thread through intermediate `Jump`s (also free).
fn dce_pass(module: &mut Module) -> PassStat {
    let before = module.ops.len();
    let mut rewrites = 0usize;

    // Thread jump chains: any target landing on a `Jump` follows it
    // (bounded — lowered control flow is forward-only, but be safe).
    let resolved: Vec<Op> = module.ops.clone();
    for op in &mut module.ops {
        map_target(op, |mut t| {
            for _ in 0..64 {
                match resolved[t as usize] {
                    Op::Jump { target } if target != t => t = target,
                    _ => break,
                }
            }
            t
        });
    }

    let mut deleted = vec![false; module.ops.len()];
    for fi in 0..module.funcs.len() {
        let (entry, end, total_regs) = {
            let f = &module.funcs[fi];
            (f.entry, f.end, f.total_regs)
        };
        let live = Liveness::compute(&module.ops, &module.calls, entry, end, total_regs);
        for pc in entry..end {
            let dead = match module.ops[pc as usize] {
                Op::Const { dst, .. } => !live.live_after(pc, dst),
                Op::CastBool { reg } => !live.live_after(pc, reg),
                Op::Jump { target } => target == pc + 1,
                _ => false,
            };
            if dead {
                deleted[pc as usize] = true;
                rewrites += 1;
            }
        }
    }
    compact(module, &deleted);
    PassStat {
        wall_ns: 0,
        pass: "dce",
        before,
        after: module.ops.len(),
        unit: "op",
        rewrites,
        action: "removed",
    }
}

/// Register-window compaction: shrinks each function's `total_regs` to
/// the registers its (optimized) body actually touches, so every
/// activation zeroes a smaller window. Locals always stay mapped.
fn regs_pass(module: &mut Module) -> PassStat {
    let before: usize = module.funcs.iter().map(|f| f.total_regs as usize).sum();
    let mut rewrites = 0usize;
    let mut reads = Vec::new();
    for f in &mut module.funcs {
        let mut max_used: u16 = f.frame_regs.saturating_sub(1);
        for pc in f.entry..f.end {
            let op = &module.ops[pc as usize];
            reads.clear();
            reg_reads(op, &module.calls, &mut reads);
            if let Some(w) = reg_write(op) {
                reads.push(w);
            }
            for &r in &reads {
                max_used = max_used.max(r);
            }
        }
        let shrunk = (max_used + 1).max(f.frame_regs);
        if shrunk < f.total_regs {
            f.total_regs = shrunk;
            rewrites += 1;
        }
    }
    PassStat {
        wall_ns: 0,
        pass: "regs",
        before,
        after: module.funcs.iter().map(|f| f.total_regs as usize).sum(),
        unit: "reg",
        rewrites,
        action: "shrunk",
    }
}

// ---- pass 4: monomorphic dispatch ----------------------------------------

/// Jump-table compaction: a [`Op::Call`] through a stub whose table has a
/// single live entry devirtualises into [`Op::CallMono`] — one class
/// check and a direct jump instead of the table indirection, with the
/// same dispatch charges and the same `MissingTarget` error on mismatch.
fn mono_pass(module: &mut Module) -> PassStat {
    let before = module.ops.len();
    let mut rewrites = 0usize;
    for pc in 0..module.ops.len() {
        let Op::Call {
            call,
            child,
            argbase,
        } = module.ops[pc]
        else {
            continue;
        };
        let stub = module.calls[call as usize].stub;
        let mut live = module.stubs[stub as usize]
            .targets
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != NO_TARGET);
        if let (Some((class, &target)), None) = (live.next(), live.next()) {
            module.ops[pc] = Op::CallMono {
                call,
                child,
                argbase,
                target,
                class: class as u16,
            };
            rewrites += 1;
        }
    }
    PassStat {
        wall_ns: 0,
        pass: "mono",
        before,
        after: module.ops.len(),
        unit: "op",
        rewrites,
        action: "devirtualised",
    }
}

// ---- pass 5: constant-pool compaction ------------------------------------

/// Drops constants no surviving op references and renumbers the pool
/// (re-deduplication: folding interns bit-identical values once, and the
/// passes above orphan the literals they swallowed).
fn pool_pass(module: &mut Module) -> PassStat {
    let before = module.consts.len();
    let mut used = vec![false; module.consts.len()];
    let const_ref = |op: &Op| match *op {
        Op::Const { c, .. }
        | Op::FoldedConst { c, .. }
        | Op::ConstBin { c, .. }
        | Op::ConstBinBranch { c, .. }
        | Op::ConstTree { c, .. }
        | Op::ConstGlob { c, .. }
        | Op::ConstLoc { c, .. } => Some(c),
        _ => None,
    };
    for op in &module.ops {
        if let Some(c) = const_ref(op) {
            used[c as usize] = true;
        }
    }
    let mut remap = vec![0u16; module.consts.len()];
    let mut consts = Vec::new();
    for (i, &u) in used.iter().enumerate() {
        if u {
            remap[i] = consts.len() as u16;
            consts.push(module.consts[i]);
        }
    }
    let rewrites = before - consts.len();
    module.consts = consts;
    for op in &mut module.ops {
        match op {
            Op::Const { c, .. }
            | Op::FoldedConst { c, .. }
            | Op::ConstBin { c, .. }
            | Op::ConstBinBranch { c, .. }
            | Op::ConstTree { c, .. }
            | Op::ConstGlob { c, .. }
            | Op::ConstLoc { c, .. } => *c = remap[*c as usize],
            _ => {}
        }
    }
    PassStat {
        wall_ns: 0,
        pass: "pool",
        before,
        after: module.consts.len(),
        unit: "const",
        rewrites,
        action: "dropped",
    }
}
