//! Umbrella crate for the Grafter reproduction workspace.
//!
//! This package exists to host workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). See the repository `README.md` for
//! the crate-by-crate architecture map, a quickstart of the staged
//! [`Pipeline`](grafter::pipeline::Pipeline) API and how to run the paper's
//! benchmarks.
//!
//! The actual library surface lives in the member crates, re-exported here
//! for convenience:
//!
//! - [`grafter`] — the fusion compiler (analysis, fusion, codegen) and the
//!   staged `pipeline` API with unified diagnostics
//! - [`grafter_frontend`] — the traversal language frontend
//! - [`grafter_automata`] — access automata
//! - [`grafter_runtime`] — tree runtime, IR interpreter and the pipeline's
//!   `Execute` stage
//! - [`grafter_cachesim`] — cache hierarchy simulator
//! - [`grafter_treefuser`] — TreeFuser-style baseline
//! - [`grafter_workloads`] — the paper's four case studies

pub use grafter;
pub use grafter_automata;
pub use grafter_cachesim;
pub use grafter_frontend;
pub use grafter_runtime;
pub use grafter_treefuser;
pub use grafter_workloads;
