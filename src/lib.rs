//! Umbrella crate for the Grafter reproduction workspace.
//!
//! This package exists to host workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). See the repository `README.md` for
//! the crate-by-crate architecture map, a quickstart of the compile-once
//! [`Engine`] API and how to run the paper's benchmarks.
//!
//! The actual library surface lives in the member crates, re-exported here
//! for convenience:
//!
//! - [`grafter_engine`] — **the front door**: immutable, `Arc`-shareable
//!   [`Engine`]s, per-request [`Session`]s, unified [`Report`]s and
//!   deterministic batch fan-out
//! - [`grafter`] — the fusion compiler (analysis, fusion, codegen,
//!   per-pair `--explain` verdicts) and the typed [`Error`]
//! - [`grafter_frontend`] — the traversal language frontend
//! - [`grafter_automata`] — access automata
//! - [`grafter_runtime`] — tree runtime and the IR interpreter backend
//! - [`grafter_vm`] — the bytecode compiler and register VM backend
//! - [`grafter_cachesim`] — cache hierarchy simulator
//! - [`grafter_treefuser`] — TreeFuser-style baseline
//! - [`grafter_workloads`] — the paper's four case studies

pub use grafter;
pub use grafter_automata;
pub use grafter_cachesim;
pub use grafter_engine;
pub use grafter_frontend;
pub use grafter_runtime;
pub use grafter_treefuser;
pub use grafter_vm;
pub use grafter_workloads;

pub use grafter_engine::{Backend, BatchOptions, Engine, Error, Report, Session};
