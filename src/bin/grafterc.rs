//! `grafterc` — command-line front door to the fusion compiler.
//!
//! Mirrors the original Grafter's Clang-tool usage: feed it a traversal
//! program (a file, or `-` for stdin), name the root class and the
//! traversal sequence, and it prints the fused artifact — as C++-like
//! source in the paper's Fig. 6 style (`--emit cpp`, the default) or as
//! the disassembled `grafter-vm` bytecode module (`--emit bytecode`).
//! Drives the `grafter_engine::Engine` API: one build compiles, fuses
//! and (on the VM tier) lowers exactly once; `--run` then executes the
//! artifact in a session.
//!
//! ```text
//! grafterc <file.gr | -> --root <Class> --passes <t1,t2,...>
//!          [--unfused] [--stats] [--backend interp|vm|jit|jit-release]
//!          [-O0|-O1|-O2] [--emit cpp|bytecode|none] [--disasm-blocks]
//!          [--run] [--parallel N] [--json] [--profile] [--trace-out FILE]
//! ```
//!
//! `--backend` names the execution tier the artifact is being prepared
//! for: it selects the default `--emit` (the compiled tiers disassemble
//! their bytecode) and, with `--stats`/`--run`, that tier
//! compiles/executes. `jit` is the closure-threaded native tier in its
//! counted (bit-identical accounting) mode; `jit-release` drops the
//! accounting. `-O{0,1,2}` picks the bytecode optimization level
//! (default `-O2`); the disassembly header lists what each optimizer
//! pass did, and `--stats` repeats those per-pass deltas on stderr so
//! they survive a piped or discarded stdout. `--disasm-blocks` switches
//! the bytecode emission to the per-basic-block view with CFG edges —
//! exactly the blocks the jit tier compiles one closure from.
//! `--json` switches diagnostics (stderr) to a JSON array; the emitted
//! artifact stays on stdout. `--run` executes the program once on a
//! freshly allocated root-class node with null children — a smoke
//! execution that surfaces runtime failures. With `--run --json` the
//! run's `Report` is additionally serialized as one JSON object on
//! stdout (combine with `--emit none` for a pure-JSON stdout).
//! `--parallel N` runs with N-worker intra-tree parallelism (forking
//! statically certified independent sibling subtrees onto the worker
//! pool); results are bit-identical to a sequential run, so the flag
//! only changes wall time.
//!
//! `--profile` attaches a `grafter_obs::TraceProbe`: the build records
//! per-stage compile spans, `--run` records the tier's runtime profile,
//! and a ranked text summary lands on stderr. `--trace-out FILE`
//! additionally writes the whole trace as Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`).
//!
//! Exit codes distinguish the failure stage:
//!
//! | Code | Meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | I/O failure (unreadable input) |
//! | 2 | usage error (bad flags) |
//! | 3 | compile-side failure (lex/parse/sema/fuse) |
//! | 4 | runtime failure (`--run`) |

use std::io::Read as _;
use std::process::ExitCode;
use std::sync::Arc;

use grafter::{Diag, DiagnosticBag, Error, FuseOptions, Stage};
use grafter_engine::{Backend, Engine, OptLevel, ParallelOptions, Probe, TraceProbe};

const USAGE: &str = "usage: grafterc <file.gr | -> --root <Class> --passes <t1,t2,...> \
     [--unfused] [--stats] [--backend interp|vm|jit|jit-release] [-O0|-O1|-O2] \
     [--emit cpp|bytecode|none] [--disasm-blocks] [--run] [--parallel N] [--json] \
     [--profile] [--trace-out FILE]";

const EXIT_IO: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_COMPILE: u8 = 3;
const EXIT_RUNTIME: u8 = 4;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Prints an [`Error`]'s diagnostics to stderr — rendered caret snippets
/// by default, a JSON array with `--json` — and picks the exit code from
/// its stage. In JSON mode `pending` (warnings held back so the whole
/// invocation emits exactly one parseable array) is merged in front.
fn report(err: &Error, pending: &DiagnosticBag, source: &str, path: &str, json: bool) -> ExitCode {
    if json {
        let mut all = pending.clone();
        all.merge(err.diagnostics().clone());
        all.dedup();
        eprintln!("{}", all.render_json(source));
    } else {
        for d in err.diagnostics().iter() {
            eprintln!("{path}:{}", d.render(source));
        }
    }
    if err.is_runtime() {
        ExitCode::from(EXIT_RUNTIME)
    } else {
        ExitCode::from(EXIT_COMPILE)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args
        .first()
        .filter(|a| a.as_str() == "-" || !a.starts_with("--"))
        .cloned()
    else {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let source = if path == "-" {
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("error: cannot read stdin: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    };
    let json = args.iter().any(|a| a == "--json");
    let Some(root) = arg_value(&args, "--root") else {
        eprintln!("error: missing --root <Class>");
        return ExitCode::from(EXIT_USAGE);
    };
    let Some(passes) = arg_value(&args, "--passes") else {
        eprintln!("error: missing --passes <t1,t2,...>");
        return ExitCode::from(EXIT_USAGE);
    };
    let backend = match arg_value(&args, "--backend").as_deref() {
        None => Backend::Interp,
        Some(s) => match s.parse::<Backend>() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let mut opt_level = OptLevel::O2;
    for a in &args {
        if let Some(lvl) = a.strip_prefix("-O") {
            match lvl.parse::<OptLevel>() {
                Ok(l) => opt_level = l,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            }
        }
    }
    // The compiled tiers' natural artifact is their bytecode; the
    // interpreter walks the rendered (C++-style) program shape.
    let default_emit = match backend {
        Backend::Interp => "cpp",
        Backend::Vm | Backend::Jit(_) => "bytecode",
    };
    let emit = arg_value(&args, "--emit").unwrap_or_else(|| default_emit.to_string());
    if emit != "cpp" && emit != "bytecode" && emit != "none" {
        eprintln!("error: unknown --emit `{emit}` (expected cpp|bytecode|none)");
        return ExitCode::from(EXIT_USAGE);
    }
    let disasm_blocks = args.iter().any(|a| a == "--disasm-blocks");
    if disasm_blocks && emit != "bytecode" {
        eprintln!("error: --disasm-blocks requires `--emit bytecode` (the default on vm/jit)");
        return ExitCode::from(EXIT_USAGE);
    }
    let pass_list: Vec<&str> = passes.split(',').map(str::trim).collect();
    let opts = if args.iter().any(|a| a == "--unfused") {
        FuseOptions::unfused()
    } else {
        FuseOptions::default()
    };
    let parallel = match arg_value(&args, "--parallel") {
        None => None,
        Some(n) => match n.parse::<usize>() {
            Ok(workers) if workers >= 1 => Some(ParallelOptions::with_workers(workers)),
            _ => {
                eprintln!("error: --parallel expects a worker count of at least 1");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let probe = args
        .iter()
        .any(|a| a == "--profile")
        .then(|| Arc::new(TraceProbe::new()));
    let trace_out = arg_value(&args, "--trace-out");
    if trace_out.is_some() && probe.is_none() {
        eprintln!("error: --trace-out requires --profile");
        return ExitCode::from(EXIT_USAGE);
    }

    // One build: compile + fuse + (vm) lower, each exactly once.
    let no_warnings = DiagnosticBag::new();
    let mut builder = Engine::builder()
        .source(source.as_str())
        .entry(root.as_str(), &pass_list)
        .fusion(opts)
        .backend(backend)
        .opt_level(opt_level);
    if let Some(p) = &probe {
        builder = builder.probe(Arc::clone(p) as Arc<dyn Probe>);
    }
    let engine = match builder.build() {
        Ok(engine) => engine,
        Err(err) => return report(&err, &no_warnings, &source, &path, json),
    };
    // In JSON mode warnings are held back and merged into the single
    // end-of-invocation array (one parseable document per run); rendered
    // mode streams them immediately. `pending` accumulates the build
    // warnings plus anything emission adds below.
    let mut pending = engine.warnings().clone();
    if !json {
        for w in pending.iter() {
            eprintln!("{path}:{}", w.render(&source));
        }
    }

    // Lower at most once even on the interp tier: reuse the engine's
    // cached module when it has one.
    let adhoc_module = (emit == "bytecode" && engine.module().is_none()).then(|| {
        grafter_vm::lower_with(engine.fused_program(), &grafter_vm::VmOptions { opt_level })
    });
    match emit.as_str() {
        "bytecode" => {
            let module = engine.module().or(adhoc_module.as_ref()).unwrap();
            if module.is_empty() {
                // Dispatch on the entry class resolves no concrete target
                // (e.g. no concrete subtype implements every pass):
                // without a diagnostic the empty module header below looks
                // like a compiler bug rather than a configuration problem.
                let warn = Diag::warning_global(
                    Stage::Config,
                    format!(
                        "bytecode module is empty: dispatch on `{root}` resolves no \
                         concrete implementation of the entry passes"
                    ),
                );
                if json {
                    pending.push(warn);
                } else {
                    eprintln!("{path}:{}", warn.render(&source));
                }
            }
            if disasm_blocks {
                print!("{}", module.disassemble_blocks());
            } else {
                print!("{}", module.disassemble());
            }
        }
        "cpp" => print!("{}", engine.render_cpp()),
        _ => {}
    }

    if args.iter().any(|a| a == "--stats") {
        let m = engine.fusion_metrics();
        // Stats go to stderr so they survive a piped/discarded stdout
        // (the emitted artifact): the fusion summary line, then —
        // compiled tiers — the optimizer's per-pass deltas.
        match (engine.module().or(adhoc_module.as_ref()), engine.module()) {
            (None, _) => eprintln!(
                "fused {} traversal(s) on `{root}`: {m} [backend: interp]",
                pass_list.len()
            ),
            (Some(module), cached) => {
                match engine.jit_program() {
                    Some(program) => eprintln!(
                        "fused {} traversal(s) on `{root}`: {m} [backend: {backend} {}, \
                         {} op(s), {} stub table(s), {} compiled block(s)]",
                        pass_list.len(),
                        opt_level,
                        module.n_ops(),
                        module.n_stubs(),
                        program.n_blocks()
                    ),
                    None => eprintln!(
                        "fused {} traversal(s) on `{root}`: {m} [backend: {} {}, {} op(s), \
                         {} stub table(s)]",
                        pass_list.len(),
                        if cached.is_some() { "vm" } else { "interp" },
                        opt_level,
                        module.n_ops(),
                        module.n_stubs()
                    ),
                }
                let report = module.opt_report();
                eprintln!(
                    "opt {}: {} rewrite(s)",
                    report.level,
                    report.total_rewrites()
                );
                for p in &report.passes {
                    eprintln!(
                        "  {:<9} {:>4} -> {:<4} {}(s) ({} {})",
                        p.pass, p.before, p.after, p.unit, p.rewrites, p.action
                    );
                }
            }
        }
    }

    if args.iter().any(|a| a == "--run") {
        let mut session = engine.session();
        if let Some(par) = &parallel {
            session = session.with_parallel(par.clone());
        }
        let node = match session.alloc(&root) {
            Ok(node) => node,
            Err(err) => return report(&err, &pending, &source, &path, json),
        };
        match session.run(node) {
            // In JSON mode the run's whole Report (runtime profile
            // included when probed) is the machine-readable artifact.
            Ok(r) if json => println!("{}", r.to_json()),
            Ok(r) => eprintln!("run ok: {r}"),
            Err(err) => return report(&err, &pending, &source, &path, json),
        }
    }
    if let Some(probe) = &probe {
        eprint!("{}", probe.summary());
        if let Some(out) = &trace_out {
            if let Err(e) = std::fs::write(out, probe.chrome_trace()) {
                eprintln!("error: cannot write `{out}`: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    }
    if json && !pending.is_empty() {
        eprintln!("{}", pending.render_json(&source));
    }
    ExitCode::SUCCESS
}
