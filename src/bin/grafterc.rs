//! `grafterc` — command-line front door to the fusion compiler.
//!
//! Mirrors the original Grafter's Clang-tool usage: feed it a traversal
//! program (a file, or `-` for stdin), name the root class and the
//! traversal sequence, and it prints the fused artifact — as C++-like
//! source in the paper's Fig. 6 style (`--emit cpp`, the default) or as
//! the disassembled `grafter-vm` bytecode module (`--emit bytecode`).
//! Drives the `grafter_engine::Engine` API: one build compiles, fuses
//! and (on the VM tier) lowers exactly once; `--run` then executes the
//! artifact in a session.
//!
//! The whole CLI grammar lives in one declarative table ([`FLAGS`]):
//! `--help` is generated from it, and any flag it does not name is a
//! usage error (exit 2).
//!
//! ```text
//! grafterc <file.gr | -> --root <Class> --passes <t1,t2,...>
//!          [--unfused] [--explain] [--stats] [--backend interp|vm|jit|jit-release]
//!          [-O0|-O1|-O2] [--emit cpp|bytecode|none] [--disasm-blocks]
//!          [--run] [--parallel N] [--json] [--profile] [--trace-out FILE]
//! ```
//!
//! `--backend` names the execution tier the artifact is being prepared
//! for: it selects the default `--emit` (the compiled tiers disassemble
//! their bytecode) and, with `--stats`/`--run`, that tier
//! compiles/executes. `jit` is the closure-threaded native tier in its
//! counted (bit-identical accounting) mode; `jit-release` drops the
//! accounting. `-O{0,1,2}` picks the bytecode optimization level
//! (default `-O2`); the disassembly header lists what each optimizer
//! pass did, and `--stats` repeats those per-pass deltas on stderr so
//! they survive a piped or discarded stdout. `--disasm-blocks` switches
//! the bytecode emission to the per-basic-block view with CFG edges —
//! exactly the blocks the jit tier compiles one closure from.
//! `--json` switches diagnostics (stderr) to a JSON array; the emitted
//! artifact stays on stdout. `--run` executes the program once on a
//! freshly allocated root-class node with null children — a smoke
//! execution that surfaces runtime failures. With `--run --json` the
//! run's `Report` is additionally serialized as one JSON object on
//! stdout (combine with `--emit none` for a pure-JSON stdout).
//! `--parallel N` runs with N-worker intra-tree parallelism (forking
//! statically certified independent sibling subtrees onto the worker
//! pool); results are bit-identical to a sequential run, so the flag
//! only changes wall time.
//!
//! `--explain` prints the fusability report on stdout: one verdict per
//! same-receiver candidate pair — fused, missed (with the grouping
//! reason) or blocked (with the specific cause and the dependence edge
//! that closes the cycle) — as caret-snippet text, or as one JSON
//! object with `--json`. Unless `--emit` is given explicitly,
//! `--explain` implies `--emit none` so stdout carries the report
//! alone.
//!
//! `--profile` attaches a `grafter_obs::TraceProbe`: the build records
//! per-stage compile spans, `--run` records the tier's runtime profile,
//! and a ranked text summary lands on stderr. `--trace-out FILE`
//! additionally writes the whole trace as Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`).
//!
//! Exit codes distinguish the failure stage:
//!
//! | Code | Meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | I/O failure (unreadable input) |
//! | 2 | usage error (bad flags) |
//! | 3 | compile-side failure (lex/parse/sema/fuse) |
//! | 4 | runtime failure (`--run`) |

use std::io::Read as _;
use std::process::ExitCode;
use std::sync::Arc;

use grafter::{Diag, DiagnosticBag, Error, FuseOptions, Stage};
use grafter_engine::{Backend, Engine, OptLevel, ParallelOptions, Probe, TraceProbe};

const EXIT_IO: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_COMPILE: u8 = 3;
const EXIT_RUNTIME: u8 = 4;

/// One entry of the CLI grammar: the flag, its value placeholder (`None`
/// for boolean switches) and the `--help` line.
struct FlagSpec {
    name: &'static str,
    value: Option<&'static str>,
    help: &'static str,
}

/// The whole flag table. Parsing, `--help` and the usage line are all
/// generated from this one list; a `--flag` not named here is a usage
/// error.
const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--root",
        value: Some("<Class>"),
        help: "root class of the entry sequence (required)",
    },
    FlagSpec {
        name: "--passes",
        value: Some("<t1,t2,...>"),
        help: "entry traversal names in invocation order, comma-separated (required)",
    },
    FlagSpec {
        name: "--unfused",
        value: None,
        help: "build the unfused baseline (one pass over the tree per traversal)",
    },
    FlagSpec {
        name: "--explain",
        value: None,
        help: "print per-pair fusability verdicts on stdout (JSON with --json)",
    },
    FlagSpec {
        name: "--stats",
        value: None,
        help: "print fusion metrics (and optimizer per-pass deltas) on stderr",
    },
    FlagSpec {
        name: "--backend",
        value: Some("interp|vm|jit|jit-release"),
        help: "execution tier the artifact targets (default interp)",
    },
    FlagSpec {
        name: "--emit",
        value: Some("cpp|bytecode|none"),
        help: "artifact on stdout (default cpp on interp, bytecode on vm/jit)",
    },
    FlagSpec {
        name: "--disasm-blocks",
        value: None,
        help: "per-basic-block bytecode view with CFG edges (requires --emit bytecode)",
    },
    FlagSpec {
        name: "--run",
        value: None,
        help: "execute once on a fresh root-class node; report on stderr (stdout with --json)",
    },
    FlagSpec {
        name: "--parallel",
        value: Some("N"),
        help: "run with N-worker intra-tree parallelism (bit-identical results)",
    },
    FlagSpec {
        name: "--json",
        value: None,
        help: "machine-readable output: JSON diagnostics, report and explain documents",
    },
    FlagSpec {
        name: "--profile",
        value: None,
        help: "attach a trace probe; ranked compile/run summary on stderr",
    },
    FlagSpec {
        name: "--trace-out",
        value: Some("FILE"),
        help: "write the probe's Chrome trace-event JSON to FILE (requires --profile)",
    },
    FlagSpec {
        name: "--help",
        value: None,
        help: "print this help and exit",
    },
];

/// The one-line usage string, generated from [`FLAGS`].
fn usage() -> String {
    let mut line = String::from("usage: grafterc <file.gr | -> [-O0|-O1|-O2]");
    for f in FLAGS {
        if f.name == "--help" {
            continue;
        }
        match f.value {
            Some(v) => {
                line.push_str(&format!(" [{} {v}]", f.name));
            }
            None => line.push_str(&format!(" [{}]", f.name)),
        }
    }
    line
}

/// The full `--help` text: usage line plus one aligned row per flag.
fn help() -> String {
    let mut out = usage();
    out.push_str("\n\noptions:\n");
    let width = FLAGS
        .iter()
        .map(|f| f.name.len() + f.value.map_or(0, |v| v.len() + 1))
        .max()
        .unwrap_or(0);
    for f in FLAGS {
        let left = match f.value {
            Some(v) => format!("{} {v}", f.name),
            None => f.name.to_string(),
        };
        out.push_str(&format!("  {left:<width$}  {}\n", f.help));
    }
    out.push_str("  -O0|-O1|-O2");
    out.push_str(&" ".repeat(width.saturating_sub(9)));
    out.push_str("bytecode optimization level (default -O2)\n");
    out
}

/// Arguments parsed against [`FLAGS`]: the positional input path, the
/// `-O` level, and each recognised flag with its value (switches map to
/// `None`).
struct Cli {
    path: Option<String>,
    opt_level: Option<String>,
    seen: Vec<(&'static str, Option<String>)>,
}

impl Cli {
    /// Whether `name` was given.
    fn has(&self, name: &str) -> bool {
        self.seen.iter().any(|(n, _)| *n == name)
    }

    /// The value of `name`, when given (last occurrence wins).
    fn value(&self, name: &str) -> Option<&str> {
        self.seen
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| v.as_deref())
    }
}

/// Parses `args` against the flag table. `Err` carries the usage
/// message to print before exiting with code 2.
fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        path: None,
        opt_level: None,
        seen: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(lvl) = a.strip_prefix("-O") {
            cli.opt_level = Some(lvl.to_string());
            continue;
        }
        if a == "-" || !a.starts_with('-') {
            if cli.path.is_some() {
                return Err(format!("unexpected extra input `{a}`"));
            }
            cli.path = Some(a.clone());
            continue;
        }
        let Some(spec) = FLAGS.iter().find(|f| f.name == a.as_str()) else {
            return Err(format!("unknown flag `{a}`"));
        };
        match spec.value {
            None => cli.seen.push((spec.name, None)),
            Some(placeholder) => match it.next() {
                Some(v) => cli.seen.push((spec.name, Some(v.clone()))),
                None => {
                    return Err(format!("{} expects a value {placeholder}", spec.name));
                }
            },
        }
    }
    Ok(cli)
}

/// Prints an [`Error`]'s diagnostics to stderr — rendered caret snippets
/// by default, a JSON array with `--json` — and picks the exit code from
/// its stage. In JSON mode `pending` (warnings held back so the whole
/// invocation emits exactly one parseable array) is merged in front.
fn report(err: &Error, pending: &DiagnosticBag, source: &str, path: &str, json: bool) -> ExitCode {
    if json {
        let mut all = pending.clone();
        all.merge(err.diagnostics().clone());
        all.dedup();
        eprintln!("{}", all.render_json(source));
    } else {
        for d in err.diagnostics().iter() {
            eprintln!("{path}:{}", d.render(source));
        }
    }
    if err.is_runtime() {
        ExitCode::from(EXIT_RUNTIME)
    } else {
        ExitCode::from(EXIT_COMPILE)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", usage());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if cli.has("--help") {
        print!("{}", help());
        return ExitCode::SUCCESS;
    }
    let Some(path) = cli.path.clone() else {
        eprintln!("{}", usage());
        return ExitCode::from(EXIT_USAGE);
    };
    let source = if path == "-" {
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("error: cannot read stdin: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    };
    let json = cli.has("--json");
    let Some(root) = cli.value("--root").map(str::to_string) else {
        eprintln!("error: missing --root <Class>");
        return ExitCode::from(EXIT_USAGE);
    };
    let Some(passes) = cli.value("--passes").map(str::to_string) else {
        eprintln!("error: missing --passes <t1,t2,...>");
        return ExitCode::from(EXIT_USAGE);
    };
    let backend = match cli.value("--backend") {
        None => Backend::Interp,
        Some(s) => match s.parse::<Backend>() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let opt_level = match cli.opt_level.as_deref() {
        None => OptLevel::O2,
        Some(lvl) => match lvl.parse::<OptLevel>() {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let explain = cli.has("--explain");
    // The compiled tiers' natural artifact is their bytecode; the
    // interpreter walks the rendered (C++-style) program shape. With
    // --explain the report is the artifact unless --emit insists.
    let default_emit = if explain {
        "none"
    } else {
        match backend {
            Backend::Interp => "cpp",
            Backend::Vm | Backend::Jit(_) => "bytecode",
        }
    };
    let emit = cli.value("--emit").unwrap_or(default_emit).to_string();
    if emit != "cpp" && emit != "bytecode" && emit != "none" {
        eprintln!("error: unknown --emit `{emit}` (expected cpp|bytecode|none)");
        return ExitCode::from(EXIT_USAGE);
    }
    let disasm_blocks = cli.has("--disasm-blocks");
    if disasm_blocks && emit != "bytecode" {
        eprintln!("error: --disasm-blocks requires `--emit bytecode` (the default on vm/jit)");
        return ExitCode::from(EXIT_USAGE);
    }
    let pass_list: Vec<&str> = passes.split(',').map(str::trim).collect();
    let opts = if cli.has("--unfused") {
        FuseOptions::unfused()
    } else {
        FuseOptions::default()
    };
    let parallel = match cli.value("--parallel") {
        None => None,
        Some(n) => match n.parse::<usize>() {
            Ok(workers) if workers >= 1 => Some(ParallelOptions::with_workers(workers)),
            _ => {
                eprintln!("error: --parallel expects a worker count of at least 1");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let probe = cli.has("--profile").then(|| Arc::new(TraceProbe::new()));
    let trace_out = cli.value("--trace-out").map(str::to_string);
    if trace_out.is_some() && probe.is_none() {
        eprintln!("error: --trace-out requires --profile");
        return ExitCode::from(EXIT_USAGE);
    }

    // One build: compile + fuse + (vm) lower, each exactly once.
    let no_warnings = DiagnosticBag::new();
    let mut builder = Engine::builder()
        .source(source.as_str())
        .entry(root.as_str(), &pass_list)
        .fusion(opts)
        .backend(backend)
        .opt_level(opt_level);
    if let Some(p) = &probe {
        builder = builder.probe(Arc::clone(p) as Arc<dyn Probe>);
    }
    let engine = match builder.build() {
        Ok(engine) => engine,
        Err(err) => return report(&err, &no_warnings, &source, &path, json),
    };
    // In JSON mode warnings are held back and merged into the single
    // end-of-invocation array (one parseable document per run); rendered
    // mode streams them immediately. `pending` accumulates the build
    // warnings plus anything emission adds below.
    let mut pending = engine.warnings().clone();
    if !json {
        for w in pending.iter() {
            eprintln!("{path}:{}", w.render(&source));
        }
    }

    // Lower at most once even on the interp tier: reuse the engine's
    // cached module when it has one.
    let adhoc_module = (emit == "bytecode" && engine.module().is_none()).then(|| {
        grafter_vm::lower_with(engine.fused_program(), &grafter_vm::VmOptions { opt_level })
    });
    match emit.as_str() {
        "bytecode" => {
            let module = engine.module().or(adhoc_module.as_ref()).unwrap();
            if module.is_empty() {
                // Dispatch on the entry class resolves no concrete target
                // (e.g. no concrete subtype implements every pass):
                // without a diagnostic the empty module header below looks
                // like a compiler bug rather than a configuration problem.
                let warn = Diag::warning_global(
                    Stage::Config,
                    format!(
                        "bytecode module is empty: dispatch on `{root}` resolves no \
                         concrete implementation of the entry passes"
                    ),
                );
                if json {
                    pending.push(warn);
                } else {
                    eprintln!("{path}:{}", warn.render(&source));
                }
            }
            if disasm_blocks {
                print!("{}", module.disassemble_blocks());
            } else {
                print!("{}", module.disassemble());
            }
        }
        "cpp" => print!("{}", engine.render_cpp()),
        _ => {}
    }

    if explain {
        // The fusability report is stdout content: text by default, one
        // JSON object with --json (parseable by grafter_obs::json).
        if json {
            println!("{}", engine.explain().render_json(&source));
        } else {
            print!("{}", engine.explain().render_text(&source));
        }
    }

    if cli.has("--stats") {
        let m = engine.fusion_metrics();
        // Stats go to stderr so they survive a piped/discarded stdout
        // (the emitted artifact): the fusion summary line, then —
        // compiled tiers — the optimizer's per-pass deltas.
        match (engine.module().or(adhoc_module.as_ref()), engine.module()) {
            (None, _) => eprintln!(
                "fused {} traversal(s) on `{root}`: {m} [backend: interp]",
                pass_list.len()
            ),
            (Some(module), cached) => {
                match engine.jit_program() {
                    Some(program) => eprintln!(
                        "fused {} traversal(s) on `{root}`: {m} [backend: {backend} {}, \
                         {} op(s), {} stub table(s), {} compiled block(s)]",
                        pass_list.len(),
                        opt_level,
                        module.n_ops(),
                        module.n_stubs(),
                        program.n_blocks()
                    ),
                    None => eprintln!(
                        "fused {} traversal(s) on `{root}`: {m} [backend: {} {}, {} op(s), \
                         {} stub table(s)]",
                        pass_list.len(),
                        if cached.is_some() { "vm" } else { "interp" },
                        opt_level,
                        module.n_ops(),
                        module.n_stubs()
                    ),
                }
                let report = module.opt_report();
                eprintln!(
                    "opt {}: {} rewrite(s)",
                    report.level,
                    report.total_rewrites()
                );
                for p in &report.passes {
                    eprintln!(
                        "  {:<9} {:>4} -> {:<4} {}(s) ({} {})",
                        p.pass, p.before, p.after, p.unit, p.rewrites, p.action
                    );
                }
            }
        }
    }

    if cli.has("--run") {
        let mut session = engine.session();
        if let Some(par) = &parallel {
            session = session.with_parallel(par.clone());
        }
        let node = match session.alloc(&root) {
            Ok(node) => node,
            Err(err) => return report(&err, &pending, &source, &path, json),
        };
        match session.run(node) {
            // In JSON mode the run's whole Report (runtime profile
            // included when probed) is the machine-readable artifact.
            Ok(r) if json => println!("{}", r.to_json()),
            Ok(r) => eprintln!("run ok: {r}"),
            Err(err) => return report(&err, &pending, &source, &path, json),
        }
    }
    if let Some(probe) = &probe {
        eprint!("{}", probe.summary());
        if let Some(out) = &trace_out {
            if let Err(e) = std::fs::write(out, probe.chrome_trace()) {
                eprintln!("error: cannot write `{out}`: {e}");
                return ExitCode::from(EXIT_IO);
            }
        }
    }
    if json && !pending.is_empty() {
        eprintln!("{}", pending.render_json(&source));
    }
    ExitCode::SUCCESS
}
