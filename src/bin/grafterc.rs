//! `grafterc` — command-line front door to the fusion compiler.
//!
//! Mirrors the original Grafter's Clang-tool usage: feed it a traversal
//! program, name the root class and the traversal sequence, and it prints
//! the fused artifact — as C++-like source in the paper's Fig. 6 style
//! (`--emit cpp`, the default) or as the disassembled `grafter-vm`
//! bytecode module the register VM executes (`--emit bytecode`). Drives
//! the staged `grafter::pipeline` API and reports problems through its
//! unified diagnostics.
//!
//! ```text
//! grafterc <file.gr> --root <Class> --passes <t1,t2,...>
//!          [--unfused] [--stats] [--backend interp|vm] [--emit cpp|bytecode]
//! ```
//!
//! `--backend` names the execution tier the artifact is being prepared
//! for: it selects the default `--emit` (the VM tier disassembles its
//! bytecode) and, with `--stats`, reports that tier's compiled form.

use std::process::ExitCode;

use grafter::{FuseOptions, Pipeline};
use grafter_vm::{Backend, ExecuteBackend};

const USAGE: &str = "usage: grafterc <file.gr> --root <Class> --passes <t1,t2,...> \
     [--unfused] [--stats] [--backend interp|vm] [--emit cpp|bytecode]";

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match Pipeline::compile(source.as_str()) {
        Ok(c) => c,
        Err(bag) => {
            for d in bag.iter() {
                eprintln!("{path}:{}", d.render(&source));
            }
            return ExitCode::FAILURE;
        }
    };
    for w in compiled.warnings().iter() {
        eprintln!("{path}:{}", w.render(compiled.source()));
    }
    let Some(root) = arg_value(&args, "--root") else {
        eprintln!("error: missing --root <Class>");
        return ExitCode::from(2);
    };
    let Some(passes) = arg_value(&args, "--passes") else {
        eprintln!("error: missing --passes <t1,t2,...>");
        return ExitCode::from(2);
    };
    let backend = match arg_value(&args, "--backend").as_deref() {
        None => Backend::Interp,
        Some(s) => match s.parse::<Backend>() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
    };
    // The VM tier's natural artifact is its bytecode; the interpreter
    // walks the rendered (C++-style) program shape.
    let default_emit = match backend {
        Backend::Interp => "cpp",
        Backend::Vm => "bytecode",
    };
    let emit = arg_value(&args, "--emit").unwrap_or_else(|| default_emit.to_string());
    if emit != "cpp" && emit != "bytecode" {
        eprintln!("error: unknown --emit `{emit}` (expected cpp|bytecode)");
        return ExitCode::from(2);
    }
    let pass_list: Vec<&str> = passes.split(',').map(str::trim).collect();
    let opts = if args.iter().any(|a| a == "--unfused") {
        FuseOptions::unfused()
    } else {
        FuseOptions::default()
    };
    match compiled.fuse(&root, &pass_list, &opts) {
        Ok(fused) => {
            let stats = args.iter().any(|a| a == "--stats");
            // Lower at most once, and only when something reads the module.
            let module = (emit == "bytecode" || (backend == Backend::Vm && stats))
                .then(|| fused.lower_module());
            match emit.as_str() {
                "bytecode" => print!("{}", module.as_ref().unwrap().disassemble()),
                _ => print!("{}", fused.render_cpp()),
            }
            if stats {
                let m = fused.metrics();
                match backend {
                    Backend::Interp => eprintln!(
                        "fused {} traversal(s) on `{root}`: {m} [backend: interp]",
                        pass_list.len()
                    ),
                    Backend::Vm => {
                        let module = module.as_ref().unwrap();
                        eprintln!(
                            "fused {} traversal(s) on `{root}`: {m} [backend: vm, {} op(s), {} stub table(s)]",
                            pass_list.len(),
                            module.n_ops(),
                            module.n_stubs()
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(bag) => {
            eprintln!("{}", bag.render(compiled.source()));
            ExitCode::FAILURE
        }
    }
}
