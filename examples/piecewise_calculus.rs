//! Piecewise-function calculus on kd-trees (the paper's third case study):
//! build f(x) = x^2 on [-10, 10], compute d/dx, scale, and integrate —
//! then check the results against the analytic values.
//!
//! Run with: `cargo run --example piecewise_calculus`

use grafter_engine::Engine;
use grafter_runtime::{Heap, Value};
use grafter_workloads::kdtree::{self, Op};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled = kdtree::compiled();

    // Schedule: f' = 2x, then scale by 3 -> 6x, then integral over [0, 10]
    // = 3 x^2 | 0..10 = 300, and projection at x = 2 -> 12.
    let schedule = [
        Op::Differentiate,
        Op::Scale(3.0),
        Op::Integrate(0.0, 10.0),
        Op::Project(2.0),
    ];
    let passes: Vec<&str> = schedule.iter().map(Op::pass).collect();
    let args: Vec<Vec<Value>> = schedule.iter().map(Op::args).collect();

    let engine = Engine::builder()
        .compiled(compiled)
        .entry(kdtree::ROOT_CLASS, &passes)
        .args(args)
        .build()?;
    let m = engine.fusion_metrics();
    println!(
        "schedule {:?}\nfused into {} functions; single pass: {}\n",
        passes, m.functions, m.fully_fused
    );

    // Build a depth-6 tree over [-10, 10] representing f(x) = x^2 exactly
    // (every leaf holds the same cubic coefficients).
    let mut heap = engine.new_heap();
    let root = {
        fn build(heap: &mut Heap, lo: f64, hi: f64, depth: usize) -> grafter_runtime::NodeId {
            if depth == 0 {
                let leaf = heap.alloc_by_name("KdLeaf").unwrap();
                heap.set_by_name(leaf, "kind", Value::Int(1)).unwrap();
                heap.set_by_name(leaf, "Lo", Value::Float(lo)).unwrap();
                heap.set_by_name(leaf, "Hi", Value::Float(hi)).unwrap();
                heap.set_by_name(leaf, "C2", Value::Float(1.0)).unwrap(); // x^2
                return leaf;
            }
            let mid = (lo + hi) / 2.0;
            let inner = heap.alloc_by_name("KdInner").unwrap();
            heap.set_by_name(inner, "Lo", Value::Float(lo)).unwrap();
            heap.set_by_name(inner, "Hi", Value::Float(hi)).unwrap();
            heap.set_by_name(inner, "Split", Value::Float(mid)).unwrap();
            let l = build(heap, lo, mid, depth - 1);
            let r = build(heap, mid, hi, depth - 1);
            heap.set_child_by_name(inner, "Left", Some(l)).unwrap();
            heap.set_child_by_name(inner, "Right", Some(r)).unwrap();
            inner
        }
        build(&mut heap, -10.0, 10.0, 6)
    };

    let mut session = engine.session_on(heap);
    let report = session.run(root)?;

    // Global accumulators surface on the report.
    let integral = report.global("INTEGRAL").unwrap().as_f64();
    let projection = report.global("PROJECTION").unwrap().as_f64();
    println!("d/dx x^2 = 2x, scaled by 3 -> 6x");
    println!("integral of 6x over [0,10]  = {integral}   (analytic: 300)");
    println!("value at x=2                = {projection}   (analytic: 12)");
    println!(
        "node visits: {} (one fused pass over {} nodes)",
        report.metrics.visits,
        session.heap().live_count()
    );

    assert!((integral - 300.0).abs() < 1e-6);
    assert!((projection - 12.0).abs() < 1e-6);
    Ok(())
}
