//! Run the six AST compiler passes of the paper's second case study on a
//! small program, showing the tree before and after: `++x` de-sugars into
//! an assignment, constants propagate and fold, and a dead branch is
//! removed from the tree.
//!
//! Run with: `cargo run --example ast_optimizer`

use grafter_engine::Engine;
use grafter_runtime::{Heap, NodeId, Value};
use grafter_workloads::ast::{self, kind};

fn dump(heap: &Heap, id: NodeId, indent: usize) {
    let class = &heap.program().classes[heap.class_of_raw(id).index()].name;
    let extra = match class.as_str() {
        "ConstantExpr" => format!(" value={}", heap.get_by_name(id, "Value").unwrap().as_i64()),
        "VarRefExpr" => {
            let k = heap.get_by_name(id, "kind").unwrap().as_i64();
            if k == kind::EXPR_CONST {
                format!(
                    " -> folded to {}",
                    heap.get_by_name(id, "Value").unwrap().as_i64()
                )
            } else {
                format!(" var v{}", heap.get_by_name(id, "VarId").unwrap().as_i64())
            }
        }
        "BinaryExpr" => {
            let k = heap.get_by_name(id, "kind").unwrap().as_i64();
            if k == kind::EXPR_CONST {
                format!(
                    " -> folded to {}",
                    heap.get_by_name(id, "Value").unwrap().as_i64()
                )
            } else {
                format!(" op={}", heap.get_by_name(id, "Op").unwrap().as_i64())
            }
        }
        "IncrStmt" | "DecrStmt" => {
            format!(" var v{}", heap.get_by_name(id, "VarId").unwrap().as_i64())
        }
        _ => String::new(),
    };
    println!("{:indent$}{class}{extra}", "", indent = indent);
    for v in heap.slots_raw(id).iter() {
        if let Value::Ref(Some(c)) = v {
            dump(heap, *c, indent + 2);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::builder()
        .compiled(ast::compiled())
        .entry(ast::ROOT_CLASS, &ast::PASSES)
        .build()?;

    // Hand-build:  x = 4; ++x; if (x - 5) { y = 1; } else { y = 2; }
    let mut heap = engine.new_heap();
    let node = |heap: &mut Heap, class: &str, fields: &[(&str, i64)]| {
        let n = heap.alloc_by_name(class).unwrap();
        for (f, v) in fields {
            heap.set_by_name(n, f, Value::Int(*v)).unwrap();
        }
        n
    };
    let c4 = node(
        &mut heap,
        "ConstantExpr",
        &[("kind", kind::EXPR_CONST), ("Value", 4)],
    );
    let lhs = node(
        &mut heap,
        "VarRefExpr",
        &[("kind", kind::EXPR_VAR), ("VarId", 0)],
    );
    let s1 = node(&mut heap, "AssignStmt", &[("kind", kind::STMT_ASSIGN)]);
    heap.set_child_by_name(s1, "Lhs", Some(lhs)).unwrap();
    heap.set_child_by_name(s1, "Rhs", Some(c4)).unwrap();

    let s2 = node(
        &mut heap,
        "IncrStmt",
        &[("kind", kind::STMT_INCR), ("VarId", 0)],
    );

    let cl = node(
        &mut heap,
        "VarRefExpr",
        &[("kind", kind::EXPR_VAR), ("VarId", 0)],
    );
    let cr = node(
        &mut heap,
        "ConstantExpr",
        &[("kind", kind::EXPR_CONST), ("Value", 5)],
    );
    let cond = node(
        &mut heap,
        "BinaryExpr",
        &[("kind", kind::EXPR_BIN), ("Op", kind::OP_SUB)],
    );
    heap.set_child_by_name(cond, "Lhs", Some(cl)).unwrap();
    heap.set_child_by_name(cond, "Rhs", Some(cr)).unwrap();

    let mk_branch = |heap: &mut Heap, val: i64| {
        let c = node(
            heap,
            "ConstantExpr",
            &[("kind", kind::EXPR_CONST), ("Value", val)],
        );
        let l = node(
            heap,
            "VarRefExpr",
            &[("kind", kind::EXPR_VAR), ("VarId", 1)],
        );
        let a = node(heap, "AssignStmt", &[("kind", kind::STMT_ASSIGN)]);
        heap.set_child_by_name(a, "Lhs", Some(l)).unwrap();
        heap.set_child_by_name(a, "Rhs", Some(c)).unwrap();
        let end = heap.alloc_by_name("StmtListEnd").unwrap();
        let cell = heap.alloc_by_name("StmtListInner").unwrap();
        heap.set_child_by_name(cell, "S", Some(a)).unwrap();
        heap.set_child_by_name(cell, "Next", Some(end)).unwrap();
        cell
    };
    let then_l = mk_branch(&mut heap, 1);
    let else_l = mk_branch(&mut heap, 2);
    let ifs = node(&mut heap, "IfStmt", &[("kind", kind::STMT_IF)]);
    heap.set_child_by_name(ifs, "Cond", Some(cond)).unwrap();
    heap.set_child_by_name(ifs, "Then", Some(then_l)).unwrap();
    heap.set_child_by_name(ifs, "Else", Some(else_l)).unwrap();

    // body list s1 ; s2 ; ifs
    let mut list = heap.alloc_by_name("StmtListEnd").unwrap();
    for s in [ifs, s2, s1] {
        let cell = heap.alloc_by_name("StmtListInner").unwrap();
        heap.set_child_by_name(cell, "S", Some(s)).unwrap();
        heap.set_child_by_name(cell, "Next", Some(list)).unwrap();
        list = cell;
    }
    let f = heap.alloc_by_name("Function").unwrap();
    heap.set_child_by_name(f, "Body", Some(list)).unwrap();
    let fend = heap.alloc_by_name("FunctionListEnd").unwrap();
    let fcell = heap.alloc_by_name("FunctionListInner").unwrap();
    heap.set_child_by_name(fcell, "F", Some(f)).unwrap();
    heap.set_child_by_name(fcell, "Next", Some(fend)).unwrap();
    let root = heap.alloc_by_name("ProgramRoot").unwrap();
    heap.set_child_by_name(root, "Funcs", Some(fcell)).unwrap();

    println!("--- before ---");
    dump(&heap, root, 0);

    // Hand the built tree to a session and run the six fused passes.
    let mut session = engine.session_on(heap);
    let report = session.run(root)?;

    println!("\n--- after desugar + const-prop + fold + branch removal ---");
    dump(session.heap(), root, 0);
    println!(
        "\n(x=4; ++x makes x=5; the condition x-5 folds to 0, so the then-branch was deleted)"
    );
    println!("node visits: {}", report.metrics.visits);
    Ok(())
}
