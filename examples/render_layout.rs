//! Lay out a multi-page document with the five render-tree passes of the
//! paper's first case study, comparing fused and unfused executions.
//!
//! Run with: `cargo run --release --example render_layout`

use grafter::FusionOptions;
use grafter_cachesim::CacheHierarchy;
use grafter_engine::Engine;
use grafter_workloads::render;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled = render::compiled();
    // One engine per fusion configuration — compiled once, cache model
    // attached engine-wide so every session's report carries traffic.
    let engine = |opts: FusionOptions| {
        Engine::builder()
            .compiled(compiled.clone())
            .entry(render::ROOT_CLASS, &render::PASSES)
            .fusion(opts)
            .cache(CacheHierarchy::xeon())
            .build()
    };
    let fused = engine(FusionOptions::default())?;
    let unfused = engine(FusionOptions::unfused())?;

    println!("five layout passes: {:?}", render::PASSES);
    let m = fused.fusion_metrics();
    println!(
        "fused pipeline: {} generated functions, {} dispatch stubs\n",
        m.functions, m.stubs
    );

    for (name, engine) in [("fused", &fused), ("unfused", &unfused)] {
        let mut session = engine.session();
        let doc = session.build_tree(|heap| render::build_document(heap, 100, 7));
        let report = session.run(doc)?;
        let cache = report.cache.as_ref().unwrap();
        println!(
            "{name:>8}: visits={:>7} instructions={:>9} L2 misses={:>6} cycles={}",
            report.metrics.visits,
            report.metrics.instructions,
            cache.misses(1),
            report.cycles(),
        );
        if name == "fused" {
            // Show the geometry of the first page.
            let heap = session.heap();
            let pages = heap
                .child_by_name(doc, "Pages")
                .flatten()
                .ok_or("no pages")?;
            let page = heap.child_by_name(pages, "P").flatten().ok_or("no page")?;
            println!(
                "          page 1: width={:?} height={:?} at ({:?}, {:?})",
                session.get_field(page, "Width")?,
                session.get_field(page, "Height")?,
                session.get_field(page, "PosX")?,
                session.get_field(page, "PosY")?,
            );
        }
    }
    Ok(())
}
