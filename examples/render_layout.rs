//! Lay out a multi-page document with the five render-tree passes of the
//! paper's first case study, comparing fused and unfused executions.
//!
//! Run with: `cargo run --release --example render_layout`

use grafter_cachesim::CacheHierarchy;
use grafter_runtime::Execute;
use grafter_workloads::render;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled = render::compiled();
    let fused = compiled.fuse_default(render::ROOT_CLASS, &render::PASSES)?;
    let unfused = compiled.fuse_unfused(render::ROOT_CLASS, &render::PASSES)?;

    println!("five layout passes: {:?}", render::PASSES);
    let m = fused.metrics();
    println!(
        "fused pipeline: {} generated functions, {} dispatch stubs\n",
        m.functions, m.stubs
    );

    for (name, artifact) in [("fused", &fused), ("unfused", &unfused)] {
        let mut heap = artifact.new_heap();
        let doc = render::build_document(&mut heap, 100, 7);
        let report = artifact
            .executor()
            .cache(CacheHierarchy::xeon())
            .run(&mut heap, doc)?;
        let cache = report.cache.as_ref().unwrap();
        println!(
            "{name:>8}: visits={:>7} instructions={:>9} L2 misses={:>6} cycles={}",
            report.metrics.visits,
            report.metrics.instructions,
            cache.misses(1),
            report.cycles(),
        );
        if name == "fused" {
            // Show the geometry of the first page.
            let pages = heap
                .child_by_name(doc, "Pages")
                .flatten()
                .ok_or("no pages")?;
            let page = heap.child_by_name(pages, "P").flatten().ok_or("no page")?;
            println!(
                "          page 1: width={:?} height={:?} at ({:?}, {:?})",
                heap.get_by_name(page, "Width").unwrap(),
                heap.get_by_name(page, "Height").unwrap(),
                heap.get_by_name(page, "PosX").unwrap(),
                heap.get_by_name(page, "PosY").unwrap(),
            );
        }
    }
    Ok(())
}
