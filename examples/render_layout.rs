//! Lay out a multi-page document with the five render-tree passes of the
//! paper's first case study, comparing fused and unfused executions.
//!
//! Run with: `cargo run --release --example render_layout`

use grafter_cachesim::CacheHierarchy;
use grafter_runtime::{Heap, Interp};
use grafter_workloads::render;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = render::program();
    let fused = grafter::fuse(&program, render::ROOT_CLASS, &render::PASSES, &grafter::FuseOptions::default())?;
    let unfused = grafter::fuse(&program, render::ROOT_CLASS, &render::PASSES, &grafter::FuseOptions::unfused())?;

    println!("five layout passes: {:?}", render::PASSES);
    println!(
        "fused pipeline: {} generated functions, {} dispatch stubs\n",
        fused.n_functions(),
        fused.stubs.len()
    );

    for (name, fp) in [("fused", &fused), ("unfused", &unfused)] {
        let mut heap = Heap::new(&program);
        let doc = render::build_document(&mut heap, 100, 7);
        let mut interp = Interp::new(fp).with_cache(CacheHierarchy::xeon());
        interp.run(&mut heap, doc, &[])?;
        let cache = interp.cache.as_ref().unwrap().stats();
        println!(
            "{name:>8}: visits={:>7} instructions={:>9} L2 misses={:>6} cycles={}",
            interp.metrics.visits,
            interp.metrics.instructions,
            cache.misses(1),
            interp.metrics.cycles(&cache),
        );
        if name == "fused" {
            // Show the geometry of the first page.
            let pages = heap.child_by_name(doc, "Pages").flatten().ok_or("no pages")?;
            let page = heap.child_by_name(pages, "P").flatten().ok_or("no page")?;
            println!(
                "          page 1: width={:?} height={:?} at ({:?}, {:?})",
                heap.get_by_name(page, "Width").unwrap(),
                heap.get_by_name(page, "Height").unwrap(),
                heap.get_by_name(page, "PosX").unwrap(),
                heap.get_by_name(page, "PosY").unwrap(),
            );
        }
    }
    Ok(())
}
