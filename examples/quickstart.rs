//! Quickstart: write two traversals, fuse them, inspect the generated
//! code, and execute both versions — on both execution backends.
//!
//! Run with: `cargo run --example quickstart`

use grafter::Pipeline;
use grafter_runtime::{Execute, Heap, Value};
use grafter_vm::{Backend, ExecuteBackend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Grafter program: a heterogeneous list of text boxes (the
    //    paper's Fig. 2, abbreviated). Two traversals compute widths and
    //    heights; heights depend on widths at each node.
    let source = r#"
        global int CHAR_WIDTH = 8;
        struct String { int Length; }
        tree class Element {
            child Element* Next;
            int Height = 0; int Width = 0;
            int MaxHeight = 0; int TotalWidth = 0;
            virtual traversal computeWidth() {}
            virtual traversal computeHeight() {}
        }
        tree class TextBox : Element {
            String Text;
            traversal computeWidth() {
                Next->computeWidth();
                Width = Text.Length;
                TotalWidth = Next.Width + Width;
            }
            traversal computeHeight() {
                Next->computeHeight();
                Height = Text.Length * (Width / CHAR_WIDTH) + 1;
                MaxHeight = Height;
                if (Next.Height > Height) { MaxHeight = Next.Height; }
            }
        }
        tree class End : Element { }
    "#;
    let compiled = Pipeline::compile(source)?;

    // 2. Fuse the two traversals (and build the unfused baseline).
    let passes = ["computeWidth", "computeHeight"];
    let fused = compiled.fuse_default("Element", &passes)?;
    let unfused = compiled.fuse_unfused("Element", &passes)?;
    println!("fusion: {}\n", fused.metrics());

    // 3. Inspect the generated code (the paper's Fig. 6 output style).
    println!("--- generated fused code ---\n{}", fused.render_cpp());

    // 4. Build a list of 1000 text boxes and execute both versions.
    let build = |heap: &mut Heap| {
        let mut cur = heap.alloc_by_name("End").unwrap();
        for i in 0..1000 {
            let t = heap.alloc_by_name("TextBox").unwrap();
            heap.set_by_name(t, "Text.Length", Value::Int(8 + i % 64))
                .unwrap();
            heap.set_child_by_name(t, "Next", Some(cur)).unwrap();
            cur = t;
        }
        cur
    };

    // Backend selection is one argument: `Backend::Interp` walks the
    // statement trees (`.interpret(..)` is its thin alias),
    // `Backend::Vm` executes the program lowered to `grafter-vm`
    // bytecode. Both produce identical metrics and heap states; the VM
    // just gets there with far less dispatch overhead.
    for (name, artifact) in [("fused", &fused), ("unfused", &unfused)] {
        for backend in [Backend::Interp, Backend::Vm] {
            let mut heap = artifact.new_heap();
            let root = build(&mut heap);
            let metrics = artifact.run(&mut heap, root, backend)?;
            println!(
                "{name:>8} on {backend:>6}: visits = {:>5}, instructions = {:>6}, MaxHeight = {:?}",
                metrics.visits,
                metrics.instructions,
                heap.get_by_name(root, "MaxHeight").unwrap(),
            );
        }
    }
    Ok(())
}
