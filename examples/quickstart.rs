//! Quickstart: write two traversals, build an engine once, inspect the
//! generated code, and run it many times — sessions, both backends, and a
//! multi-threaded batch.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use grafter::FusionOptions;
use grafter_engine::{Backend, Engine};
use grafter_runtime::{Heap, NodeId, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Grafter program: a heterogeneous list of text boxes (the
    //    paper's Fig. 2, abbreviated). Two traversals compute widths and
    //    heights; heights depend on widths at each node.
    let source = r#"
        global int CHAR_WIDTH = 8;
        struct String { int Length; }
        tree class Element {
            child Element* Next;
            int Height = 0; int Width = 0;
            int MaxHeight = 0; int TotalWidth = 0;
            virtual traversal computeWidth() {}
            virtual traversal computeHeight() {}
        }
        tree class TextBox : Element {
            String Text;
            traversal computeWidth() {
                Next->computeWidth();
                Width = Text.Length;
                TotalWidth = Next.Width + Width;
            }
            traversal computeHeight() {
                Next->computeHeight();
                Height = Text.Length * (Width / CHAR_WIDTH) + 1;
                MaxHeight = Height;
                if (Next.Height > Height) { MaxHeight = Next.Height; }
            }
        }
        tree class End : Element { }
    "#;

    // 2. Build engines: compile + fuse (+ lower, on the VM tier) happen
    //    here, exactly once per engine — never per run.
    let entry = ("Element", ["computeWidth", "computeHeight"]);
    let engine = |backend, opts: FusionOptions| {
        Engine::builder()
            .source(source)
            .entry(entry.0, &entry.1)
            .fusion(opts)
            .backend(backend)
            .build()
    };
    let fused = engine(Backend::Interp, FusionOptions::default())?;
    let fused_vm = engine(Backend::Vm, FusionOptions::default())?;
    let unfused = engine(Backend::Interp, FusionOptions::unfused())?;
    println!("fusion: {}\n", fused.fusion_metrics());

    // 3. Inspect the generated code (the paper's Fig. 6 output style).
    println!("--- generated fused code ---\n{}", fused.render_cpp());

    // 4. Run many: a session per request, each owning its heap. Build a
    //    list of 1000 text boxes and execute on every configuration.
    let build = |heap: &mut Heap| -> NodeId {
        let mut cur = heap.alloc_by_name("End").unwrap();
        for i in 0..1000 {
            let t = heap.alloc_by_name("TextBox").unwrap();
            heap.set_by_name(t, "Text.Length", Value::Int(8 + i % 64))
                .unwrap();
            heap.set_child_by_name(t, "Next", Some(cur)).unwrap();
            cur = t;
        }
        cur
    };
    for (name, engine) in [
        ("fused", &fused),
        ("fused/vm", &fused_vm),
        ("unfused", &unfused),
    ] {
        let mut session = engine.session();
        let root = session.build_tree(build);
        let report = session.run(root)?;
        println!(
            "{name:>9}: visits = {:>5}, instructions = {:>6}, MaxHeight = {:?}",
            report.metrics.visits,
            report.metrics.instructions,
            session.get_field(root, "MaxHeight")?,
        );
    }

    // 5. Scale out: the engine is immutable and `Send + Sync` — share one
    //    `Arc` and fan a batch across worker threads. Reports come back
    //    in input order, bit-identical to a sequential run.
    let shared = Arc::new(fused_vm);
    let reports = shared.run_batch((0..16).map(|_| build).collect())?;
    println!(
        "\nbatch: {} trees on shared engine, all identical reports: {}",
        reports.len(),
        reports.iter().all(|r| *r == reports[0]),
    );
    Ok(())
}
