//! Engine API coverage over the paper's four case studies: for each
//! workload, the fused execution must produce exactly the tree (and
//! fewer node visits) of the unfused execution, end to end through
//! `grafter_engine::Engine` and per-run `Session`s.

use grafter::{Compiled, FuseOptions};
use grafter_engine::Engine;
use grafter_runtime::{with_stack, Heap, NodeId, SnapValue, Value};
use grafter_workloads::{ast, fmm, kdtree, render};

/// Runs one engine on a freshly built tree; returns the final tree
/// snapshot and the visit count.
fn run(
    engine: &Engine,
    build: &dyn Fn(&mut Heap) -> NodeId,
) -> (Vec<(String, Vec<SnapValue>)>, u64) {
    let mut session = engine.session();
    let root = session.build_tree(build);
    let report = session.run(root).unwrap();
    (session.snapshot(root), report.metrics.visits)
}

/// Fuses `passes` both ways and checks the soundness + profitability pair.
fn check_workload(
    name: &str,
    compiled: &Compiled,
    root_class: &str,
    passes: &[&str],
    args: &[Vec<Value>],
    build: &dyn Fn(&mut Heap) -> NodeId,
) {
    let engine_with = |opts: FuseOptions| {
        Engine::builder()
            .compiled(compiled.clone())
            .entry(root_class, passes)
            .fusion(opts)
            .args(args.to_vec())
            .build()
            .unwrap()
    };
    let fused = engine_with(FuseOptions::default());
    let unfused = engine_with(FuseOptions::unfused());
    let (snap_f, visits_f) = run(&fused, build);
    let (snap_u, visits_u) = run(&unfused, build);
    assert_eq!(snap_f, snap_u, "{name}: fused and unfused trees diverge");
    assert!(
        visits_f < visits_u,
        "{name}: fusion should reduce node visits ({visits_f} vs {visits_u})"
    );
}

#[test]
fn ast_fused_matches_unfused_with_fewer_visits() {
    with_stack(64 << 20, || {
        check_workload(
            "ast",
            &ast::compiled(),
            ast::ROOT_CLASS,
            &ast::PASSES,
            &[],
            &|heap| ast::build_program(heap, 20, 42),
        );
    });
}

#[test]
fn kdtree_fused_matches_unfused_with_fewer_visits() {
    with_stack(64 << 20, || {
        let compiled = kdtree::compiled();
        for (eq_name, schedule) in kdtree::equation_schedules() {
            let passes: Vec<&str> = schedule.iter().map(|op| op.pass()).collect();
            let args: Vec<Vec<Value>> = schedule.iter().map(|op| op.args()).collect();
            check_workload(
                &format!("kdtree/{eq_name}"),
                &compiled,
                kdtree::ROOT_CLASS,
                &passes,
                &args,
                &|heap| kdtree::build_balanced(heap, 8, 42),
            );
        }
    });
}

#[test]
fn render_fused_matches_unfused_with_fewer_visits() {
    with_stack(64 << 20, || {
        check_workload(
            "render",
            &render::compiled(),
            render::ROOT_CLASS,
            &render::PASSES,
            &[],
            &|heap| render::build_document(heap, 30, 42),
        );
    });
}

#[test]
fn fmm_fused_matches_unfused_with_fewer_visits() {
    with_stack(64 << 20, || {
        check_workload(
            "fmm",
            &fmm::compiled(),
            fmm::ROOT_CLASS,
            &fmm::PASSES,
            &[],
            &|heap| fmm::build_tree(heap, 1_000, 42),
        );
    });
}
