//! Workspace-level integration tests: the full staged pipeline from DSL
//! source through fusion to instrumented execution, spanning every crate.
//! Compile-side flows go through `grafter::Compiled` / `Fused`; execution
//! goes through the `grafter_engine::Engine` / `Session` API.

use grafter::{Compiled, FuseOptions, Stage};
use grafter_cachesim::CacheHierarchy;
use grafter_engine::Engine;
use grafter_runtime::{Heap, Value};

#[test]
fn frontend_core_runtime_roundtrip() {
    let src = r#"
        tree class T {
            child T* left;
            child T* right;
            int depth = 0;
            int count = 0;
            virtual traversal mark(int d) {}
            virtual traversal tally() {}
        }
        tree class Inner : T {
            traversal mark(int d) {
                depth = d;
                this->left->mark(d + 1);
                this->right->mark(d + 1);
            }
            traversal tally() {
                this->left->tally();
                this->right->tally();
                count = this->left.count + this->right.count + 1;
            }
        }
        tree class Leaf : T {
            traversal mark(int d) { depth = d; }
            traversal tally() { count = 1; }
        }
    "#;
    let engine = Engine::builder()
        .source(src)
        .entry("T", &["mark", "tally"])
        .args(vec![vec![Value::Int(0)], vec![]])
        .build()
        .unwrap();
    assert!(engine.fusion_metrics().fully_fused);

    // Perfect binary tree of depth 4.
    fn build(heap: &mut Heap, d: usize) -> grafter_runtime::NodeId {
        if d == 0 {
            return heap.alloc_by_name("Leaf").unwrap();
        }
        let l = build(heap, d - 1);
        let r = build(heap, d - 1);
        let n = heap.alloc_by_name("Inner").unwrap();
        heap.set_child_by_name(n, "left", Some(l)).unwrap();
        heap.set_child_by_name(n, "right", Some(r)).unwrap();
        n
    }
    let mut session = engine.session();
    let root = session.build_tree(|heap| build(heap, 4));
    let report = session.run(root).unwrap();
    assert_eq!(session.get_field(root, "count").unwrap(), Value::Int(31));
    assert_eq!(session.get_field(root, "depth").unwrap(), Value::Int(0));
    // One fused pass over 31 nodes.
    assert_eq!(report.metrics.visits, 31);
}

#[test]
fn diagnostics_accumulate_across_stages() {
    // Errors from different pipeline stages arrive in one DiagnosticBag,
    // each tagged with the stage that produced it.
    let bag = Compiled::compile("tree class X { child }")
        .unwrap_err()
        .into_bag();
    assert!(bag.has_errors());
    assert!(bag.iter().all(|d| d.stage == Stage::Parse), "{bag}");

    let bag = Compiled::compile("tree class X { child Missing* c; }")
        .unwrap_err()
        .into_bag();
    assert!(bag.iter().all(|d| d.stage == Stage::Sema), "{bag}");

    let src = r#"
        tree class N {
            child N* next;
            int a = 0;
            virtual traversal t() {}
        }
        tree class C : N {
            traversal t() { a = this->next.a + 1; this->next->t(); }
        }
        tree class E : N { }
    "#;
    let compiled = Compiled::compile(src).unwrap();
    let bag = compiled.fuse_default("N", &["missing"]).unwrap_err();
    assert_eq!(bag[0].stage, Stage::Fuse);

    // Runtime failures surface through the same type: `C` reads through
    // `next`, which we leave null.
    let engine = Engine::builder()
        .compiled(compiled)
        .entry("N", &["t"])
        .build()
        .unwrap();
    let mut session = engine.session();
    let root = session.alloc("C").unwrap();
    let bag = session.run(root).unwrap_err().into_bag();
    assert_eq!(bag[0].stage, Stage::Runtime);
    assert!(bag[0].message.contains("null"), "{bag}");
}

#[test]
fn warnings_flow_through_the_pipeline() {
    let src = r#"
        pure float unused_helper(float x);
        tree class N {
            child N* next;
            int a = 0;
            virtual traversal t() {}
        }
        tree class C : N { traversal t() { a = a + 1; this->next->t(); } }
        tree class E : N { }
    "#;
    let compiled = Compiled::compile(src).unwrap();
    assert_eq!(compiled.warnings().len(), 1);
    assert!(compiled.warnings()[0].message.contains("unused_helper"));
    let fused = compiled.fuse_default("N", &["t"]).unwrap();
    assert_eq!(
        fused.warnings().len(),
        1,
        "warnings survive to the artifact"
    );
}

#[test]
fn emitted_code_matches_figure6_structure() {
    let src = r#"
        struct String { int Length; }
        global int CHAR_WIDTH = 8;
        tree class Element {
            child Element* Next;
            int Height = 0; int Width = 0;
            int MaxHeight = 0; int TotalWidth = 0;
            virtual traversal computeWidth() {}
            virtual traversal computeHeight() {}
        }
        tree class TextBox : Element {
            String Text;
            traversal computeWidth() {
                Next->computeWidth();
                Width = Text.Length;
                TotalWidth = Next.Width + Width;
            }
            traversal computeHeight() {
                Next->computeHeight();
                Height = Text.Length * (Width / CHAR_WIDTH) + 1;
                MaxHeight = Height;
                if (Next.Height > Height) { MaxHeight = Next.Height; }
            }
        }
        tree class End : Element { }
    "#;
    let fused = Compiled::compile(src)
        .unwrap()
        .fuse_default("Element", &["computeWidth", "computeHeight"])
        .unwrap();
    let code = fused.render_cpp();
    // The structural landmarks of the paper's Fig. 6.
    for landmark in [
        "active_flags",
        "call_flags",
        "call_flags <<= 1;",
        "(TextBox*)(_r)",
        "void TextBox::__stub",
        "void End::__stub",
        "_fuse_",
    ] {
        assert!(code.contains(landmark), "missing `{landmark}` in:\n{code}");
    }
}

#[test]
fn cache_simulator_integrates_with_interpreter() {
    let src = r#"
        tree class L {
            child L* next;
            int x = 0;
            virtual traversal touch() {}
        }
        tree class C : L {
            traversal touch() { x = x + 1; this->next->touch(); }
        }
        tree class E : L { }
    "#;
    let engine = Engine::builder()
        .source(src)
        .entry("L", &["touch"])
        .cache(CacheHierarchy::xeon())
        .build()
        .unwrap();
    let mut session = engine.session();
    let root = session.build_tree(|heap| {
        let mut cur = heap.alloc_by_name("E").unwrap();
        for _ in 0..100 {
            let c = heap.alloc_by_name("C").unwrap();
            heap.set_child_by_name(c, "next", Some(cur)).unwrap();
            cur = c;
        }
        cur
    });
    let report = session.run(root).unwrap();
    let stats = report.cache.as_ref().unwrap();
    assert!(stats.accesses > 0);
    assert_eq!(
        stats.accesses,
        report.metrics.loads + report.metrics.stores,
        "every memory op reaches the cache"
    );
}

#[test]
fn treefuser_baseline_is_slower_than_grafter_baseline() {
    // The paper notes Grafter's (heterogeneous) baseline is substantially
    // faster than TreeFuser's homogenised one. Verify with the cycle model.
    use grafter_workloads::render;
    let run = |hetero: bool| {
        let (compiled, root_class, passes) = if hetero {
            (
                render::compiled(),
                render::ROOT_CLASS,
                render::PASSES.to_vec(),
            )
        } else {
            (
                grafter_treefuser::compiled(),
                grafter_treefuser::ROOT_CLASS,
                grafter_treefuser::PASSES.to_vec(),
            )
        };
        let engine = Engine::builder()
            .compiled(compiled)
            .entry(root_class, &passes)
            .fusion(FuseOptions::unfused())
            .cache(CacheHierarchy::xeon())
            .build()
            .unwrap();
        let mut session = engine.session();
        let root = session.build_tree(|heap| {
            if hetero {
                render::build_document(heap, 20, 5)
            } else {
                let het = render::compiled();
                let mut src = Heap::new(het.program());
                let hroot = render::build_document(&mut src, 20, 5);
                grafter_treefuser::convert_document(&src, hroot, heap)
            }
        });
        session.run(root).unwrap().cycles()
    };
    let grafter_cycles = run(true);
    let treefuser_cycles = run(false);
    assert!(
        treefuser_cycles > grafter_cycles * 3 / 2,
        "homogenised baseline should be much slower: {treefuser_cycles} vs {grafter_cycles}"
    );
}

#[test]
fn all_four_case_studies_compile_and_fuse() {
    use grafter_workloads::{ast, fmm, kdtree, render};
    let checks: Vec<(grafter::Compiled, &str, Vec<&str>)> = vec![
        (
            render::compiled(),
            render::ROOT_CLASS,
            render::PASSES.to_vec(),
        ),
        (ast::compiled(), ast::ROOT_CLASS, ast::PASSES.to_vec()),
        (fmm::compiled(), fmm::ROOT_CLASS, fmm::PASSES.to_vec()),
        (
            kdtree::compiled(),
            kdtree::ROOT_CLASS,
            kdtree::equation_schedules()[0]
                .1
                .iter()
                .map(|op| op.pass())
                .collect(),
        ),
    ];
    for (compiled, root, passes) in checks {
        let fused = compiled.fuse_default(root, &passes).unwrap();
        assert!(fused.metrics().functions > 0);
        // Generated code renders without panicking and mentions a stub.
        assert!(fused.render_cpp().contains("__stub"));
    }
}
