//! Workspace-level integration tests: the full pipeline from DSL source
//! through fusion to instrumented execution, spanning every crate.

use grafter::{cpp, fuse, FuseOptions};
use grafter_cachesim::CacheHierarchy;
use grafter_frontend::compile;
use grafter_runtime::{Heap, Interp, Value};

#[test]
fn frontend_core_runtime_roundtrip() {
    let src = r#"
        tree class T {
            child T* left;
            child T* right;
            int depth = 0;
            int count = 0;
            virtual traversal mark(int d) {}
            virtual traversal tally() {}
        }
        tree class Inner : T {
            traversal mark(int d) {
                depth = d;
                this->left->mark(d + 1);
                this->right->mark(d + 1);
            }
            traversal tally() {
                this->left->tally();
                this->right->tally();
                count = this->left.count + this->right.count + 1;
            }
        }
        tree class Leaf : T {
            traversal mark(int d) { depth = d; }
            traversal tally() { count = 1; }
        }
    "#;
    let program = compile(src).unwrap();
    let fp = fuse(&program, "T", &["mark", "tally"], &FuseOptions::default()).unwrap();
    assert!(fp.fully_fused());

    let mut heap = Heap::new(&program);
    // Perfect binary tree of depth 4.
    fn build(heap: &mut Heap, d: usize) -> grafter_runtime::NodeId {
        if d == 0 {
            return heap.alloc_by_name("Leaf").unwrap();
        }
        let l = build(heap, d - 1);
        let r = build(heap, d - 1);
        let n = heap.alloc_by_name("Inner").unwrap();
        heap.set_child_by_name(n, "left", Some(l)).unwrap();
        heap.set_child_by_name(n, "right", Some(r)).unwrap();
        n
    }
    let root = build(&mut heap, 4);
    let mut interp = Interp::new(&fp);
    interp.run(&mut heap, root, &[vec![Value::Int(0)], vec![]]).unwrap();
    assert_eq!(heap.get_by_name(root, "count").unwrap(), Value::Int(31));
    assert_eq!(heap.get_by_name(root, "depth").unwrap(), Value::Int(0));
    // One fused pass over 31 nodes.
    assert_eq!(interp.metrics.visits, 31);
}

#[test]
fn emitted_code_matches_figure6_structure() {
    let src = r#"
        struct String { int Length; }
        global int CHAR_WIDTH = 8;
        tree class Element {
            child Element* Next;
            int Height = 0; int Width = 0;
            int MaxHeight = 0; int TotalWidth = 0;
            virtual traversal computeWidth() {}
            virtual traversal computeHeight() {}
        }
        tree class TextBox : Element {
            String Text;
            traversal computeWidth() {
                Next->computeWidth();
                Width = Text.Length;
                TotalWidth = Next.Width + Width;
            }
            traversal computeHeight() {
                Next->computeHeight();
                Height = Text.Length * (Width / CHAR_WIDTH) + 1;
                MaxHeight = Height;
                if (Next.Height > Height) { MaxHeight = Next.Height; }
            }
        }
        tree class End : Element { }
    "#;
    let program = compile(src).unwrap();
    let fp = fuse(&program, "Element", &["computeWidth", "computeHeight"], &FuseOptions::default())
        .unwrap();
    let code = cpp::emit(&fp);
    // The structural landmarks of the paper's Fig. 6.
    for landmark in [
        "active_flags",
        "call_flags",
        "call_flags <<= 1;",
        "(TextBox*)(_r)",
        "void TextBox::__stub",
        "void End::__stub",
        "_fuse_",
    ] {
        assert!(code.contains(landmark), "missing `{landmark}` in:\n{code}");
    }
}

#[test]
fn cache_simulator_integrates_with_interpreter() {
    let src = r#"
        tree class L {
            child L* next;
            int x = 0;
            virtual traversal touch() {}
        }
        tree class C : L {
            traversal touch() { x = x + 1; this->next->touch(); }
        }
        tree class E : L { }
    "#;
    let program = compile(src).unwrap();
    let fp = fuse(&program, "L", &["touch"], &FuseOptions::default()).unwrap();
    let mut heap = Heap::new(&program);
    let mut cur = heap.alloc_by_name("E").unwrap();
    for _ in 0..100 {
        let c = heap.alloc_by_name("C").unwrap();
        heap.set_child_by_name(c, "next", Some(cur)).unwrap();
        cur = c;
    }
    let mut interp = Interp::new(&fp).with_cache(CacheHierarchy::xeon());
    interp.run(&mut heap, cur, &[]).unwrap();
    let stats = interp.cache.as_ref().unwrap().stats();
    assert!(stats.accesses > 0);
    assert_eq!(
        stats.accesses,
        interp.metrics.loads + interp.metrics.stores,
        "every memory op reaches the cache"
    );
}

#[test]
fn treefuser_baseline_is_slower_than_grafter_baseline() {
    // The paper notes Grafter's (heterogeneous) baseline is substantially
    // faster than TreeFuser's homogenised one. Verify with the cycle model.
    use grafter_workloads::render;
    let run = |hetero: bool| {
        let (program, root) = if hetero {
            let p = render::program();
            let mut heap = Heap::new(&p);
            let root = render::build_document(&mut heap, 20, 5);
            (p, (heap, root))
        } else {
            let hp = grafter_treefuser::program();
            let het = render::program();
            let mut src = Heap::new(&het);
            let hroot = render::build_document(&mut src, 20, 5);
            let mut heap = Heap::new(&hp);
            let root = grafter_treefuser::convert_document(&src, hroot, &mut heap);
            (hp, (heap, root))
        };
        let (mut heap, root) = root;
        let (root_class, passes) = if hetero {
            (render::ROOT_CLASS, render::PASSES)
        } else {
            (grafter_treefuser::ROOT_CLASS, grafter_treefuser::PASSES)
        };
        let fp = fuse(&program, root_class, &passes, &FuseOptions::unfused()).unwrap();
        let mut interp = Interp::new(&fp).with_cache(CacheHierarchy::xeon());
        interp.run(&mut heap, root, &[]).unwrap();
        let cache = interp.cache.as_ref().unwrap().stats();
        interp.metrics.cycles(&cache)
    };
    let grafter_cycles = run(true);
    let treefuser_cycles = run(false);
    assert!(
        treefuser_cycles > grafter_cycles * 3 / 2,
        "homogenised baseline should be much slower: {treefuser_cycles} vs {grafter_cycles}"
    );
}

#[test]
fn all_four_case_studies_compile_and_fuse() {
    use grafter_workloads::{ast, fmm, kdtree, render};
    let checks: Vec<(grafter_frontend::Program, &str, Vec<&str>)> = vec![
        (render::program(), render::ROOT_CLASS, render::PASSES.to_vec()),
        (ast::program(), ast::ROOT_CLASS, ast::PASSES.to_vec()),
        (fmm::program(), fmm::ROOT_CLASS, fmm::PASSES.to_vec()),
        (
            kdtree::program(),
            kdtree::ROOT_CLASS,
            kdtree::equation_schedules()[0].1.iter().map(|op| op.pass()).collect(),
        ),
    ];
    for (program, root, passes) in checks {
        let fp = fuse(&program, root, &passes, &FuseOptions::default()).unwrap();
        assert!(fp.n_functions() > 0);
        // Generated code renders without panicking and mentions a stub.
        assert!(cpp::emit(&fp).contains("__stub"));
    }
}
