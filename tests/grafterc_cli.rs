//! `grafterc` CLI regressions: the `-O{0,1,2}` flags, the disassembly
//! header, and the empty-module diagnostic contract (`Module::is_empty`
//! carries the predicate; the warning path is exercised through the same
//! engine code the CLI drives — the zero-target state itself is only
//! constructible through `fuse_slots`, covered in
//! `crates/vm/tests/opt_differential.rs`).

use std::process::Command;

const LIST: &str = r#"
    tree class Node {
        child Node* next;
        int a = 0;
        virtual traversal inc() {}
    }
    tree class Cons : Node {
        traversal inc() { a = a + 1; this->next->inc(); }
    }
    tree class End : Node { }
"#;

fn grafterc(args: &[&str], stdin: &str) -> (String, String, Option<i32>) {
    use std::io::Write as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_grafterc"))
        .args(args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("grafterc spawns");
    // A usage error exits before stdin is read; ignore the broken pipe.
    let _ = child.stdin.take().unwrap().write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("grafterc exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn emit_bytecode_defaults_to_o2_with_pass_deltas() {
    let (stdout, stderr, code) = grafterc(
        &["-", "--root", "Node", "--passes", "inc", "--backend", "vm"],
        LIST,
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("; opt: O2"));
    assert!(
        stdout.contains("peephole"),
        "per-pass deltas shown:\n{stdout}"
    );
    assert!(stdout.contains("navcall"), "superinstructions pretty-print");
    // A well-formed program draws no config warning.
    assert!(!stderr.contains("warning"), "spurious warning: {stderr}");
}

#[test]
fn opt_level_flags_select_the_level() {
    let (o0, _, code) = grafterc(
        &[
            "-",
            "--root",
            "Node",
            "--passes",
            "inc",
            "--backend",
            "vm",
            "-O0",
        ],
        LIST,
    );
    assert_eq!(code, Some(0));
    assert!(o0.contains("; opt: O0"));
    assert!(!o0.contains("navcall"), "O0 emits naive code:\n{o0}");

    let (_, stderr, code) = grafterc(&["-", "--root", "Node", "--passes", "inc", "-O9"], LIST);
    assert_eq!(code, Some(2), "unknown level is a usage error");
    assert!(stderr.contains("unknown opt level"));
}

/// Two independent passes over the same list: one fused pair under the
/// default options, so `--explain` always has a verdict to show.
const TWO_PASS: &str = r#"
    tree class Node {
        child Node* next;
        int a = 0; int b = 0;
        virtual traversal incA() {}
        virtual traversal incB() {}
    }
    tree class Cons : Node {
        traversal incA() { a = a + 1; this->next->incA(); }
        traversal incB() { b = b + 1; this->next->incB(); }
    }
    tree class End : Node { }
"#;

#[test]
fn help_lists_every_flag_and_exits_zero() {
    let (stdout, stderr, code) = grafterc(&["--help"], "");
    assert_eq!(code, Some(0), "stderr: {stderr}");
    for flag in [
        "--root",
        "--passes",
        "--unfused",
        "--explain",
        "--stats",
        "--backend",
        "--emit",
        "--disasm-blocks",
        "--run",
        "--parallel",
        "--json",
        "--profile",
        "--trace-out",
        "--help",
        "-O0|-O1|-O2",
    ] {
        assert!(stdout.contains(flag), "help misses `{flag}`:\n{stdout}");
    }
}

#[test]
fn unknown_flags_are_usage_errors_that_name_the_flag() {
    let (_, stderr, code) = grafterc(
        &["-", "--root", "Node", "--passes", "inc", "--explian"],
        LIST,
    );
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--explian"), "stderr: {stderr}");
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

/// `f` reads through `next` after its recursive call while `g` writes the
/// same field: merging the calls would close a dependence cycle, so the
/// pair is blocked and `--explain` renders caret snippets for it.
const DEP_CYCLE: &str = r#"
    tree class Node {
        child Node* next;
        int a = 0;
        int b = 0;
        virtual traversal f() {}
        virtual traversal g() {}
    }
    tree class Cons : Node {
        traversal f() {
            a = a + 1;
            this->next->f();
            b = this->next->a;
        }
        traversal g() {
            a = a * 2;
            this->next->g();
        }
    }
    tree class End : Node { }
"#;

#[test]
fn explain_prints_verdicts_and_suppresses_the_artifact() {
    let (stdout, stderr, code) = grafterc(
        &["-", "--root", "Node", "--passes", "f,g", "--explain"],
        DEP_CYCLE,
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        stdout.starts_with("fusion explain:"),
        "--explain implies --emit none, so the report leads:\n{stdout}"
    );
    assert!(stdout.contains("[blocked]"), "{stdout}");
    assert!(stdout.contains("dependence"), "{stdout}");
    assert!(
        stdout.contains('^'),
        "caret snippets point at call sites:\n{stdout}"
    );
    // An explicit --emit still wins over the implied suppression.
    let (stdout, _, code) = grafterc(
        &[
            "-",
            "--root",
            "Node",
            "--passes",
            "incA,incB",
            "--explain",
            "--emit",
            "cpp",
        ],
        TWO_PASS,
    );
    assert_eq!(code, Some(0));
    assert!(stdout.contains("__stub"), "cpp artifact emitted:\n{stdout}");
    assert!(stdout.contains("fusion explain:"), "{stdout}");
}

#[test]
fn explain_json_is_machine_parseable() {
    let (stdout, stderr, code) = grafterc(
        &[
            "-",
            "--root",
            "Node",
            "--passes",
            "incA,incB",
            "--explain",
            "--json",
        ],
        TWO_PASS,
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let doc = grafter_obs::json::parse(&stdout).expect("explain --json emits one JSON document");
    let fused = doc
        .get("totals")
        .and_then(|t| t.get("fused"))
        .and_then(|n| n.as_num())
        .unwrap();
    assert!(fused >= 1.0, "{stdout}");
    let pairs = doc.get("pairs").and_then(|p| p.as_arr()).unwrap();
    assert!(!pairs.is_empty());
    assert!(pairs[0].get("verdict").and_then(|v| v.as_str()).is_some());
}

#[test]
fn explain_json_names_blocking_reasons_on_the_ast_workload() {
    // The CI `explain-smoke` contract: on a real case study the JSON
    // report must parse with the obs parser and contain at least one
    // blocked verdict naming its blocking reason.
    let (stdout, stderr, code) = grafterc(
        &[
            "-",
            "--root",
            grafter_workloads::ast::ROOT_CLASS,
            "--passes",
            &grafter_workloads::ast::PASSES.join(","),
            "--explain",
            "--json",
        ],
        grafter_workloads::ast::SOURCE,
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let doc = grafter_obs::json::parse(&stdout).expect("one parseable JSON document");
    let pairs = doc.get("pairs").and_then(|p| p.as_arr()).unwrap();
    let blocked: Vec<_> = pairs
        .iter()
        .filter(|p| p.get("verdict").and_then(|v| v.as_str()) == Some("blocked"))
        .collect();
    assert!(!blocked.is_empty(), "ast workload has blocked pairs");
    let reason = blocked[0].get("reason").and_then(|r| r.as_str()).unwrap();
    assert!(!reason.is_empty(), "blocked verdicts name their cause");
}

#[test]
fn stats_report_the_opt_level() {
    let (_, stderr, code) = grafterc(
        &[
            "-",
            "--root",
            "Node",
            "--passes",
            "inc",
            "--backend",
            "vm",
            "--stats",
            "--emit",
            "none",
        ],
        LIST,
    );
    assert_eq!(code, Some(0));
    assert!(stderr.contains("[backend: vm O2"), "stats: {stderr}");
}
