//! `grafterc` CLI regressions: the `-O{0,1,2}` flags, the disassembly
//! header, and the empty-module diagnostic contract (`Module::is_empty`
//! carries the predicate; the warning path is exercised through the same
//! engine code the CLI drives — the zero-target state itself is only
//! constructible through `fuse_slots`, covered in
//! `crates/vm/tests/opt_differential.rs`).

use std::process::Command;

const LIST: &str = r#"
    tree class Node {
        child Node* next;
        int a = 0;
        virtual traversal inc() {}
    }
    tree class Cons : Node {
        traversal inc() { a = a + 1; this->next->inc(); }
    }
    tree class End : Node { }
"#;

fn grafterc(args: &[&str], stdin: &str) -> (String, String, Option<i32>) {
    use std::io::Write as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_grafterc"))
        .args(args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("grafterc spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("grafterc exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn emit_bytecode_defaults_to_o2_with_pass_deltas() {
    let (stdout, stderr, code) = grafterc(
        &["-", "--root", "Node", "--passes", "inc", "--backend", "vm"],
        LIST,
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("; opt: O2"));
    assert!(
        stdout.contains("peephole"),
        "per-pass deltas shown:\n{stdout}"
    );
    assert!(stdout.contains("navcall"), "superinstructions pretty-print");
    // A well-formed program draws no config warning.
    assert!(!stderr.contains("warning"), "spurious warning: {stderr}");
}

#[test]
fn opt_level_flags_select_the_level() {
    let (o0, _, code) = grafterc(
        &[
            "-",
            "--root",
            "Node",
            "--passes",
            "inc",
            "--backend",
            "vm",
            "-O0",
        ],
        LIST,
    );
    assert_eq!(code, Some(0));
    assert!(o0.contains("; opt: O0"));
    assert!(!o0.contains("navcall"), "O0 emits naive code:\n{o0}");

    let (_, stderr, code) = grafterc(&["-", "--root", "Node", "--passes", "inc", "-O9"], LIST);
    assert_eq!(code, Some(2), "unknown level is a usage error");
    assert!(stderr.contains("unknown opt level"));
}

#[test]
fn stats_report_the_opt_level() {
    let (_, stderr, code) = grafterc(
        &[
            "-",
            "--root",
            "Node",
            "--passes",
            "inc",
            "--backend",
            "vm",
            "--stats",
            "--emit",
            "none",
        ],
        LIST,
    );
    assert_eq!(code, Some(0));
    assert!(stderr.contains("[backend: vm O2"), "stats: {stderr}");
}
