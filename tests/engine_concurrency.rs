//! Concurrency contract of the Engine API: one `Arc<Engine>` shared
//! across threads produces **bit-identical** results to a single-threaded
//! run — heap snapshot, `Metrics`, and simulated cache traffic — for all
//! four case studies, on both backends.
//!
//! This is the executable statement of the compile-once/run-many design:
//! the engine holds only immutable per-program state, every session owns
//! its per-run state, so thread interleaving cannot influence any
//! deterministic output. The batch API inherits the same guarantee with
//! ordering: `run_batch` returns reports by input position, not by
//! completion order.

use std::sync::Arc;
use std::thread;

use grafter_cachesim::CacheHierarchy;
use grafter_engine::{Backend, BatchOptions, Engine, Report};
use grafter_runtime::{Heap, NodeId, SnapValue};
use grafter_workloads::case_studies;

/// Worker stack: traversals recurse once per tree level.
const STACK: usize = 256 << 20;

/// Threads sharing each engine (the issue's floor is 4).
const THREADS: usize = 4;

type Snapshot = Vec<(String, Vec<SnapValue>)>;

/// One full instrumented run on a freshly built test-sized tree.
fn run_once(
    engine: &Engine,
    build: fn(&mut Heap, usize, u64) -> NodeId,
    size: usize,
) -> (Report, Snapshot) {
    let mut session = engine.session().with_cache(CacheHierarchy::xeon());
    let root = session.build_tree(|heap| build(heap, size, 42));
    let report = session.run(root).expect("case study runs");
    let snapshot = session.snapshot(root);
    (report, snapshot)
}

#[test]
fn shared_engine_is_bit_identical_across_threads_all_cases_both_backends() {
    for backend in [Backend::Interp, Backend::Vm] {
        for case in case_studies() {
            let name = case.name;
            let build = case.build;
            let size = case.test_size;
            let engine = Arc::new(case.engine(backend));

            // Single-threaded baseline (on a worker thread only for stack
            // room — still one engine, one session at a time).
            let baseline = {
                let engine = Arc::clone(&engine);
                thread::Builder::new()
                    .stack_size(STACK)
                    .spawn(move || run_once(&engine, build, size))
                    .unwrap()
                    .join()
                    .unwrap()
            };

            // The same engine, shared by THREADS concurrent sessions.
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    thread::Builder::new()
                        .stack_size(STACK)
                        .spawn(move || run_once(&engine, build, size))
                        .unwrap()
                })
                .collect();
            for handle in handles {
                let (report, snapshot) = handle.join().unwrap();
                assert_eq!(
                    report, baseline.0,
                    "{name}/{backend}: concurrent report diverges from single-threaded run"
                );
                assert_eq!(
                    report.cache, baseline.0.cache,
                    "{name}/{backend}: cache traffic diverges"
                );
                assert_eq!(
                    snapshot, baseline.1,
                    "{name}/{backend}: concurrent heap snapshot diverges"
                );
            }
        }
    }
}

#[test]
fn backends_agree_under_concurrency() {
    // The differential guarantee (interp == vm) holds for reports
    // produced concurrently, not just sequentially.
    for case in case_studies() {
        let build = case.build;
        let size = case.test_size;
        let interp = Arc::new(case.engine(Backend::Interp));
        let vm = Arc::new(case.engine(Backend::Vm));
        let spawn = |engine: Arc<Engine>| {
            thread::Builder::new()
                .stack_size(STACK)
                .spawn(move || run_once(&engine, build, size))
                .unwrap()
        };
        let (i, v) = (spawn(interp), spawn(vm));
        let (ri, si) = i.join().unwrap();
        let (rv, sv) = v.join().unwrap();
        assert_eq!(ri.metrics, rv.metrics, "{}: metrics diverge", case.name);
        assert_eq!(ri.cache, rv.cache, "{}: cache traffic diverges", case.name);
        assert_eq!(ri.globals, rv.globals, "{}: globals diverge", case.name);
        assert_eq!(si, sv, "{}: heap snapshots diverge", case.name);
    }
}

#[test]
fn run_batch_is_deterministic_and_ordered_for_every_case_study() {
    for case in case_studies() {
        let build = case.build;
        let engine = case.engine(Backend::Vm);
        // Different seeds per slot make misordered results detectable.
        let seeds: Vec<u64> = (0..8).collect();
        let mk_inputs = || -> Vec<_> {
            seeds
                .iter()
                .map(|&seed| move |heap: &mut Heap| build(heap, case.test_size, seed))
                .collect()
        };
        let sequential = engine
            .run_batch_with(
                mk_inputs(),
                &BatchOptions {
                    workers: 1,
                    stack_bytes: STACK,
                    ..BatchOptions::default()
                },
            )
            .unwrap();
        let concurrent = engine
            .run_batch_with(
                mk_inputs(),
                &BatchOptions {
                    workers: THREADS,
                    stack_bytes: STACK,
                    ..BatchOptions::default()
                },
            )
            .unwrap();
        assert_eq!(
            concurrent, sequential,
            "{}: batch results must be input-ordered and bit-identical",
            case.name
        );
    }
}
