//! Differential backend testing over the paper's four case studies: for
//! each workload, fused and unfused, the `grafter-vm` bytecode VM must
//! produce exactly the heap state and exactly the metrics (visits,
//! instructions, loads, stores) of the instrumented interpreter.
//!
//! This is the executable statement of the VM's contract: lowering is a
//! pure representation change — same semantics, same cost model, less
//! dispatch overhead. The workload matrix is the shared
//! `grafter_workloads::case_studies()` descriptor, so these tests always
//! cover exactly the configurations the benches measure.

use grafter::{Compiled, FuseOptions};
use grafter_engine::Engine;
use grafter_runtime::{with_stack, Heap, Metrics, NodeId, SnapValue, Value};
use grafter_vm::Backend;
use grafter_workloads::{case_studies, kdtree};

/// Runs one engine on a freshly built tree.
fn run(
    engine: &Engine,
    build: &dyn Fn(&mut Heap) -> NodeId,
) -> (Vec<(String, Vec<SnapValue>)>, Metrics) {
    let mut session = engine.session();
    let root = session.build_tree(build);
    let report = session.run(root).unwrap();
    (session.snapshot(root), report.metrics)
}

/// Fuses `passes` both ways; for each artifact the two backends must
/// agree on the final tree and on every counter.
fn check_workload(
    name: &str,
    compiled: &Compiled,
    root_class: &str,
    passes: &[&str],
    args: &[Vec<Value>],
    build: &dyn Fn(&mut Heap) -> NodeId,
) {
    let engine_with = |opts: &FuseOptions, backend: Backend| {
        Engine::builder()
            .compiled(compiled.clone())
            .entry(root_class, passes)
            .fusion(opts.clone())
            .backend(backend)
            .args(args.to_vec())
            .build()
            .unwrap()
    };
    for (kind, opts) in [
        ("fused", FuseOptions::default()),
        ("unfused", FuseOptions::unfused()),
    ] {
        let (snap_i, m_i) = run(&engine_with(&opts, Backend::Interp), build);
        let (snap_v, m_v) = run(&engine_with(&opts, Backend::Vm), build);
        assert_eq!(
            snap_i, snap_v,
            "{name}/{kind}: interp and vm heap states diverge"
        );
        assert_eq!(
            m_i.visits, m_v.visits,
            "{name}/{kind}: visit counts diverge"
        );
        assert_eq!(m_i, m_v, "{name}/{kind}: metrics diverge");
    }
}

#[test]
fn all_case_studies_match_interp_fused_and_unfused() {
    with_stack(64 << 20, || {
        for case in case_studies() {
            check_workload(
                case.name,
                &case.compiled,
                case.root_class,
                &case.passes,
                &case.args,
                &|heap| case.build_test(heap),
            );
        }
    });
}

#[test]
fn kdtree_vm_matches_interp_on_every_equation() {
    // Beyond the shared matrix's first equation: all three piecewise
    // schedules of Table 6.
    with_stack(64 << 20, || {
        let compiled = kdtree::compiled();
        for (eq_name, schedule) in kdtree::equation_schedules() {
            let passes: Vec<&str> = schedule.iter().map(|op| op.pass()).collect();
            let args: Vec<Vec<Value>> = schedule.iter().map(|op| op.args()).collect();
            check_workload(
                &format!("kdtree/{eq_name}"),
                &compiled,
                kdtree::ROOT_CLASS,
                &passes,
                &args,
                &|heap| kdtree::build_balanced(heap, 8, 42),
            );
        }
    });
}

#[test]
fn nan_fields_stay_differentially_comparable() {
    // A traversal that manufactures NaN (0.0/0.0) and Inf on the tree:
    // `SnapValue` equality is bit-level, so structurally identical trees
    // carrying NaN must still satisfy the fused==unfused and interp==vm
    // differential contracts instead of spuriously failing on NaN != NaN.
    let src = r#"
        tree class N {
            child N* next;
            float num = 0.0;
            float den = 0.0;
            float q = 0.0;
            virtual traversal divide() {}
            virtual traversal scale() {}
        }
        tree class C : N {
            traversal divide() { q = this->num / this->den; this->next->divide(); }
            traversal scale() { num = this->num * 2.0; this->next->scale(); }
        }
        tree class E : N { }
    "#;
    let compiled = Compiled::compile(src).unwrap();
    let build: &dyn Fn(&mut Heap) -> NodeId = &|heap| {
        // Slot 0: 0.0/0.0 = NaN; slot 1: 1.0/0.0 = Inf; slot 2: finite.
        let nums = [0.0, 1.0, 3.0];
        let dens = [0.0, 0.0, 2.0];
        let mut cur = heap.alloc_by_name("E").unwrap();
        for (&num, &den) in nums.iter().zip(&dens).rev() {
            let c = heap.alloc_by_name("C").unwrap();
            heap.set_by_name(c, "num", Value::Float(num)).unwrap();
            heap.set_by_name(c, "den", Value::Float(den)).unwrap();
            heap.set_child_by_name(c, "next", Some(cur)).unwrap();
            cur = c;
        }
        cur
    };
    check_workload("nan", &compiled, "N", &["divide", "scale"], &[], build);
    // The trees really do carry NaN: snapshots must still self-compare.
    let engine = Engine::builder()
        .compiled(compiled)
        .entry("N", &["divide", "scale"])
        .build()
        .unwrap();
    let (snap, _) = run(&engine, build);
    let q = &snap[0].1[3];
    assert!(
        matches!(q, SnapValue::Float(f) if f.is_nan()),
        "expected NaN in the quotient slot, got {q:?}"
    );
    assert_eq!(snap, snap.clone(), "NaN snapshot must equal itself");
}

#[test]
fn harness_equivalence_holds_on_the_vm_backend() {
    // The workloads harness itself, switched to the VM tier with one
    // argument: fused and unfused VM runs leave identical trees.
    let cases = case_studies();
    let render = &cases[1];
    assert_eq!(render.name, "render");
    let build = render.build;
    let exp = grafter_workloads::harness::Experiment::new(
        render.compiled.clone(),
        render.root_class,
        &render.passes,
        move |heap| build(heap, 10, 7),
    )
    .with_backend(Backend::Vm);
    assert!(exp.check_equivalence());
}
