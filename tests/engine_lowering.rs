//! Compile-once guarantee: building a VM engine lowers the bytecode
//! module exactly once, and no amount of sessions, runs or batches
//! triggers another lowering.
//!
//! Kept in its own integration-test binary (its own process) so the
//! process-wide `grafter_vm::lowering_count()` counter sees only this
//! file's lowerings.

use grafter_engine::{Backend, BatchOptions};
use grafter_runtime::Heap;
use grafter_vm::lowering_count;
use grafter_workloads::case_studies;

#[test]
fn vm_engine_lowers_exactly_once_for_any_number_of_runs() {
    let cases = case_studies();
    let case = &cases[0];
    assert_eq!(case.name, "ast");

    assert_eq!(lowering_count(), 0, "nothing lowered before any build");

    // Interp engines never lower.
    let interp = case.engine(Backend::Interp);
    assert_eq!(lowering_count(), 0);
    assert!(interp.module().is_none());

    // One VM build = one lowering.
    let engine = case.engine(Backend::Vm);
    assert_eq!(lowering_count(), 1, "build lowers exactly once");
    assert!(engine.module().is_some());

    // Sessions, repeated runs and batches all reuse the cached module.
    let build = case.build;
    let size = case.test_size;
    for _ in 0..3 {
        let mut session = engine.session();
        let root = session.build_tree(|heap| build(heap, size, 42));
        session.run(root).unwrap();
        session.run(root).unwrap();
    }
    let inputs: Vec<_> = (0..6)
        .map(|_| move |heap: &mut Heap| build(heap, size, 42))
        .collect();
    engine
        .run_batch_with(inputs, &BatchOptions::with_workers(3))
        .unwrap();
    assert_eq!(
        lowering_count(),
        1,
        "6 sessions + 6 batch runs later, still exactly one lowering"
    );

    // A second engine is a second compile — one more, not one per run.
    let other = case.engine(Backend::Vm);
    let mut session = other.session();
    let root = session.build_tree(|heap| build(heap, size, 42));
    session.run(root).unwrap();
    assert_eq!(lowering_count(), 2);
}
