//! Fusability-explain tests: the coverage/explain invariant on the four
//! case studies, one minimal program per [`FusionVerdict`] variant, and
//! the text/JSON renderings.

use grafter::explain::{BlockCause, FusionVerdict, MissReason};
use grafter::{fuse, Compiled, FuseOptions, FusedProgram};
use grafter_obs::json;
use grafter_workloads::case_studies;

fn fused_with(src: &str, root: &str, passes: &[&str], opts: &FuseOptions) -> FusedProgram {
    let compiled = Compiled::compile(src).expect("test program compiles");
    fuse(compiled.program(), root, passes, opts).expect("test entry resolves")
}

/// Two independent same-receiver calls: fuses under default options,
/// missed (grouping disabled / cutoffs) under restricted ones.
const PAIR_SRC: &str = r#"
    tree class Node {
        child Node* next;
        int a = 0;
        virtual traversal go() {}
    }
    tree class Cons : Node {
        traversal go() { a = a + 1; this->next->go(); this->next->go(); }
    }
    tree class End : Node { }
"#;

#[test]
fn explain_totals_equal_coverage_on_case_studies() {
    for case in case_studies() {
        let passes: Vec<&str> = case.passes.clone();
        for opts in [FuseOptions::default(), FuseOptions::unfused()] {
            let fp = fuse(case.compiled.program(), case.root_class, &passes, &opts)
                .expect("case study resolves");
            assert_eq!(
                fp.explain.totals(),
                fp.coverage,
                "{}: explain totals must equal coverage counters",
                case.name
            );
            // Every verdict carries spans that land inside the source.
            for p in &fp.explain.pairs {
                for site in [&p.left, &p.right] {
                    assert!(
                        site.span.start < site.span.end && site.span.end <= case.source.len(),
                        "{}: span {:?} of `{}` out of bounds",
                        case.name,
                        site.span,
                        site.method
                    );
                    let text = &case.source[site.span.start..site.span.end];
                    assert!(
                        text.contains(&site.method),
                        "{}: span text {text:?} does not name `{}`",
                        case.name,
                        site.method
                    );
                }
            }
        }
    }
}

#[test]
fn fused_verdict_with_group_and_spans() {
    let fp = fused_with(PAIR_SRC, "Node", &["go"], &FuseOptions::default());
    assert!(fp.coverage.fused_pairs >= 1);
    let pair = fp
        .explain
        .pairs
        .iter()
        .find(|p| matches!(p.verdict, FusionVerdict::Fused { .. }))
        .expect("one fused pair");
    assert_eq!(pair.receiver, "this->next");
    assert_eq!(pair.left.method, "go");
    let text = &PAIR_SRC[pair.left.span.start..pair.left.span.end];
    assert!(text.contains("this->next->go()"), "span text: {text:?}");
    assert_eq!(fp.explain.totals(), fp.coverage);
}

#[test]
fn missed_verdict_when_grouping_disabled() {
    let fp = fused_with(PAIR_SRC, "Node", &["go"], &FuseOptions::unfused());
    assert!(fp.coverage.missed_pairs >= 1);
    let pair = &fp.explain.pairs[0];
    assert_eq!(
        pair.verdict,
        FusionVerdict::Missed {
            reason: MissReason::GroupingDisabled
        }
    );
    assert_eq!(pair.verdict.slug(), "grouping-disabled");
    let text = &PAIR_SRC[pair.right.span.start..pair.right.span.end];
    assert!(text.contains("this->next->go()"), "span text: {text:?}");
    assert_eq!(fp.explain.totals(), fp.coverage);
}

#[test]
fn missed_verdict_on_group_size_cutoff() {
    let opts = FuseOptions {
        max_group_size: 1,
        ..FuseOptions::default()
    };
    let fp = fused_with(PAIR_SRC, "Node", &["go"], &opts);
    let pair = fp
        .explain
        .pairs
        .iter()
        .find(|p| matches!(p.verdict, FusionVerdict::Missed { .. }))
        .expect("a missed pair");
    assert_eq!(
        pair.verdict,
        FusionVerdict::Missed {
            reason: MissReason::GroupSizeCutoff { limit: 1 }
        }
    );
    assert_eq!(pair.verdict.slug(), "group-size-cutoff");
    assert_eq!(fp.explain.totals(), fp.coverage);
}

#[test]
fn missed_verdict_on_occurrence_cutoff() {
    let opts = FuseOptions {
        max_occurrences: 1,
        ..FuseOptions::default()
    };
    let fp = fused_with(PAIR_SRC, "Node", &["go"], &opts);
    let pair = fp
        .explain
        .pairs
        .iter()
        .find(|p| matches!(p.verdict, FusionVerdict::Missed { .. }))
        .expect("a missed pair");
    assert_eq!(
        pair.verdict,
        FusionVerdict::Missed {
            reason: MissReason::OccurrenceCutoff { limit: 1 }
        }
    );
    assert_eq!(pair.verdict.slug(), "occurrence-cutoff");
    assert_eq!(fp.explain.totals(), fp.coverage);
}

#[test]
fn blocked_verdict_on_no_common_supertype() {
    // `Both` inherits two unrelated hierarchies; the two casted self-calls
    // share the receiver path `this` but dispatch on `A` vs `B`, which
    // have no common supertype.
    let src = r#"
        tree class A { virtual traversal fa() {} }
        tree class B { virtual traversal fb() {} }
        tree class Both : A, B {
            traversal go() {
                static_cast<A*>(this)->fa();
                static_cast<B*>(this)->fb();
            }
        }
    "#;
    let fp = fused_with(src, "Both", &["go"], &FuseOptions::default());
    assert!(fp.coverage.blocked_pairs >= 1);
    let pair = fp
        .explain
        .pairs
        .iter()
        .find(|p| matches!(p.verdict, FusionVerdict::Blocked { .. }))
        .expect("a blocked pair");
    assert_eq!(
        pair.verdict,
        FusionVerdict::Blocked {
            cause: BlockCause::NoCommonSupertype {
                left: "A".to_string(),
                right: "B".to_string(),
            }
        }
    );
    assert_eq!(pair.verdict.slug(), "no-common-supertype");
    let text = &src[pair.left.span.start..pair.left.span.end];
    assert!(text.contains("fa()"), "span text: {text:?}");
    assert_eq!(fp.explain.totals(), fp.coverage);
}

#[test]
fn blocked_verdict_on_dependence_cycle() {
    // `f`'s recursive call writes `a` throughout the `next` subtree; the
    // read of `this->next->a` after it depends on the call, and `g`'s
    // call (writing the same locations) depends on that read — merging
    // the two calls would close a cycle through the read.
    let src = r#"
        tree class Node {
            child Node* next;
            int a = 0;
            int b = 0;
            virtual traversal f() {}
            virtual traversal g() {}
        }
        tree class Cons : Node {
            traversal f() {
                a = a + 1;
                this->next->f();
                b = this->next->a;
            }
            traversal g() {
                a = a * 2;
                this->next->g();
            }
        }
        tree class End : Node { }
    "#;
    let fp = fused_with(src, "Node", &["f", "g"], &FuseOptions::default());
    assert!(fp.coverage.blocked_pairs >= 1, "{:?}", fp.coverage);
    let pair = fp
        .explain
        .pairs
        .iter()
        .find(|p| matches!(p.verdict, FusionVerdict::Blocked { .. }))
        .expect("a blocked pair");
    let FusionVerdict::Blocked {
        cause: BlockCause::DependenceCycle { from, to, .. },
    } = &pair.verdict
    else {
        panic!("expected a dependence cycle, got {:?}", pair.verdict);
    };
    assert_eq!(pair.verdict.slug(), "dependence-cycle");
    assert!(from.what.contains('`') || from.what.contains("statement"));
    assert!(to.what.contains('`') || to.what.contains("statement"));
    let text = &src[pair.left.span.start..pair.left.span.end];
    assert!(text.contains("->f()"), "span text: {text:?}");
    let text = &src[pair.right.span.start..pair.right.span.end];
    assert!(text.contains("->g()"), "span text: {text:?}");
    assert_eq!(fp.explain.totals(), fp.coverage);
}

#[test]
fn render_text_has_caret_snippets() {
    let fp = fused_with(PAIR_SRC, "Node", &["go"], &FuseOptions::unfused());
    let text = fp.explain.render_text(PAIR_SRC);
    assert!(text.contains("fusion explain:"), "{text}");
    assert!(text.contains("[missed]"), "{text}");
    assert!(text.contains('^'), "caret snippet expected: {text}");
    assert!(text.contains("warning[fuse]"), "{text}");
}

#[test]
fn render_json_parses_and_matches_totals() {
    let fp = fused_with(PAIR_SRC, "Node", &["go"], &FuseOptions::default());
    let doc = json::parse(&fp.explain.render_json(PAIR_SRC)).expect("valid JSON");
    let totals = doc.get("totals").expect("totals object");
    assert_eq!(
        totals.get("fused").and_then(|v| v.as_num()),
        Some(fp.coverage.fused_pairs as f64)
    );
    assert_eq!(
        totals.get("missed").and_then(|v| v.as_num()),
        Some(fp.coverage.missed_pairs as f64)
    );
    assert_eq!(
        totals.get("blocked").and_then(|v| v.as_num()),
        Some(fp.coverage.blocked_pairs as f64)
    );
    let pairs = doc.get("pairs").and_then(|v| v.as_arr()).expect("pairs");
    assert_eq!(pairs.len(), fp.explain.pairs.len());
    for p in pairs {
        assert!(p.get("verdict").and_then(|v| v.as_str()).is_some());
        assert!(p.get("reason").and_then(|v| v.as_str()).is_some());
        let span = p.get("left").and_then(|l| l.get("span")).expect("span");
        assert!(span.get("line").and_then(|v| v.as_num()).unwrap() >= 1.0);
    }
}
