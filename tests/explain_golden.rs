//! Golden-file tests for the `--explain` report: the full text and JSON
//! renderings for each of the paper's four case studies are pinned under
//! `tests/golden/`, so any change to verdict classification, span
//! resolution or report formatting shows up as a reviewable diff.
//!
//! Regenerate after an intentional change with
//! `BLESS=1 cargo test --test explain_golden`.

use std::fs;
use std::path::PathBuf;

use grafter_engine::Engine;
use grafter_workloads::case_studies;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden `{}` ({e}); run with BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden `{name}` drifted; rerun with BLESS=1 if the change is intended"
    );
}

#[test]
fn explain_text_and_json_match_goldens_on_all_case_studies() {
    for case in case_studies() {
        let engine = Engine::builder()
            .compiled(case.compiled.clone())
            .entry(case.root_class, &case.passes)
            .build()
            .unwrap();
        let explain = engine.explain();
        check_golden(
            &format!("{}.explain.txt", case.name),
            &explain.render_text(case.source),
        );
        check_golden(
            &format!("{}.explain.json", case.name),
            &explain.render_json(case.source),
        );
    }
}

#[test]
fn golden_totals_agree_with_compile_side_coverage() {
    // The pinned reports are not just stable — their headline counts are
    // exactly the `FusionCoverage` the fusion pass computed.
    for case in case_studies() {
        let engine = Engine::builder()
            .compiled(case.compiled.clone())
            .entry(case.root_class, &case.passes)
            .build()
            .unwrap();
        let totals = engine.explain().totals();
        let coverage = &engine.fused_program().coverage;
        assert_eq!(totals.fused_pairs, coverage.fused_pairs, "{}", case.name);
        assert_eq!(totals.missed_pairs, coverage.missed_pairs, "{}", case.name);
        assert_eq!(
            totals.blocked_pairs, coverage.blocked_pairs,
            "{}",
            case.name
        );
    }
}
