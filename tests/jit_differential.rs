//! Differential testing of the closure-threaded JIT tier: for every case
//! study, fused and unfused, `Backend::Jit` in counted mode must produce
//! exactly the heap state, exactly the metrics (visits, instructions,
//! loads, stores), exactly the simulated cache traffic and exactly the
//! final globals of both the instrumented interpreter and the `O2`
//! bytecode VM — a three-way bit-identity diff.
//!
//! This is the executable statement of the JIT's contract: compiling
//! basic blocks to fused closures is a pure representation change. The
//! suite also pins the tier's edge semantics — runtime-error parity,
//! division-by-zero and wrapping-overflow parity — plus a 100k-node
//! deep-spine stress run, and the release-mode contract (identical final
//! trees and globals with only the `visits` counter retained).

use grafter::FusionOptions;
use grafter_cachesim::CacheHierarchy;
use grafter_engine::{Backend, Engine, JitMode, Report};
use grafter_runtime::{with_stack, Heap, NodeId, SnapValue, Value};
use grafter_workloads::case_studies;
use grafter_workloads::harness::RUN_STACK;

type Snapshot = Vec<(String, Vec<SnapValue>)>;

/// The three tiers whose deterministic outcomes must be bit-identical.
const TIERS: [Backend; 3] = [Backend::Interp, Backend::Vm, Backend::Jit(JitMode::Counted)];

/// One fully instrumented run (cache model attached) on a freshly built
/// tree.
fn run_once(engine: &Engine, build: &dyn Fn(&mut Heap) -> NodeId) -> (Report, Snapshot) {
    let mut session = engine.session().with_cache(CacheHierarchy::xeon());
    let root = session.build_tree(build);
    let report = session.run(root).expect("program runs");
    let snapshot = session.snapshot(root);
    (report, snapshot)
}

/// Asserts `b`'s deterministic outcome is bit-identical to `a`'s.
/// `Report::eq` can't be used directly across tiers — it compares the
/// backend too — so each field is diffed by name for a precise failure.
fn assert_identical(label: &str, a: &(Report, Snapshot), b: &(Report, Snapshot)) {
    assert_eq!(a.1, b.1, "{label}: heap snapshots diverge");
    assert_eq!(a.0.metrics, b.0.metrics, "{label}: metrics diverge");
    assert_eq!(a.0.cache, b.0.cache, "{label}: cache traffic diverges");
    assert_eq!(a.0.globals, b.0.globals, "{label}: final globals diverge");
}

#[test]
fn jit_counted_matches_interp_and_vm_on_all_case_studies() {
    with_stack(RUN_STACK, || {
        for case in case_studies() {
            let configs = [
                ("fused", FusionOptions::default()),
                ("unfused", FusionOptions::unfused()),
            ];
            for (kind, opts) in configs {
                let build = |heap: &mut Heap| case.build_test(heap);
                let [interp, vm, jit] =
                    TIERS.map(|backend| run_once(&case.engine_with(opts.clone(), backend), &build));
                let name = case.name;
                assert_identical(&format!("{name}/{kind} interp vs vm"), &interp, &vm);
                assert_identical(&format!("{name}/{kind} interp vs jit"), &interp, &jit);
            }
        }
    });
}

/// Builds an engine for an ad-hoc source on `backend`.
fn adhoc(src: &str, root: &str, passes: &[&str], backend: Backend) -> Engine {
    Engine::builder()
        .source(src)
        .entry(root, passes)
        .backend(backend)
        .build()
        .expect("ad-hoc program compiles")
}

#[test]
fn runtime_errors_render_identically_on_all_tiers() {
    // `this->next->a` in a data access with `next` null is the tiers'
    // canonical runtime failure (a null dereference). All three must
    // fail, at runtime, with the same rendered error.
    let src = r#"
        tree class Node {
            child Node* next;
            int a = 0;
            virtual traversal probe() {}
        }
        tree class Leafless : Node {
            traversal probe() { a = this->next->a; }
        }
    "#;
    let mut rendered = Vec::new();
    for backend in TIERS {
        let engine = adhoc(src, "Node", &["probe"], backend);
        let mut session = engine.session();
        let root = session.build_tree(|heap| heap.alloc_by_name("Leafless").unwrap());
        let err = session
            .run(root)
            .expect_err("null dereference must surface as an error");
        assert!(err.is_runtime(), "{backend}: error stage is not Runtime");
        rendered.push(err.to_string());
    }
    assert_eq!(rendered[0], rendered[1], "interp and vm errors diverge");
    assert_eq!(rendered[0], rendered[2], "interp and jit errors diverge");
    assert!(
        rendered[0].contains("null child dereferenced"),
        "unexpected error text: {}",
        rendered[0]
    );
}

#[test]
fn div_by_zero_and_overflow_semantics_match_across_tiers() {
    // Integer division/remainder by zero yields 0 (deterministic, never
    // a trap) and multiplication wraps — on every tier, bit-identically.
    let src = r#"
        tree class Node {
            child Node* next;
            int q = 0; int r = 0; int big = 0;
            virtual traversal crunch() {}
        }
        tree class Cell : Node {
            traversal crunch() {
                q = this->q / 0;
                r = this->r % 0;
                big = this->big * this->big;
                this->next->crunch();
            }
        }
        tree class End : Node { }
    "#;
    let build = |heap: &mut Heap| {
        let end = heap.alloc_by_name("End").unwrap();
        let cell = heap.alloc_by_name("Cell").unwrap();
        heap.set_by_name(cell, "q", Value::Int(41)).unwrap();
        heap.set_by_name(cell, "r", Value::Int(17)).unwrap();
        heap.set_by_name(cell, "big", Value::Int(i64::MAX)).unwrap();
        heap.set_child_by_name(cell, "next", Some(end)).unwrap();
        cell
    };
    let [interp, vm, jit] =
        TIERS.map(|backend| run_once(&adhoc(src, "Node", &["crunch"], backend), &build));
    assert_identical("div0 interp vs vm", &interp, &vm);
    assert_identical("div0 interp vs jit", &interp, &jit);
    // And the semantics really are div0 → 0 and wrapping multiply.
    let cell = &interp.1[0].1;
    assert_eq!(cell[1], SnapValue::Int(0), "q = 41 / 0 must yield 0");
    assert_eq!(cell[2], SnapValue::Int(0), "r = 17 % 0 must yield 0");
    assert_eq!(
        cell[3],
        SnapValue::Int(i64::MAX.wrapping_mul(i64::MAX)),
        "big * big must wrap"
    );
}

#[test]
fn deep_spine_100k_nodes_runs_under_the_jit() {
    // A 100_000-node linked spine: the JIT must sustain one native call
    // frame per visit without exhausting the stack, and still agree with
    // the VM on every counter and on the final tree.
    const SPINE: usize = 100_000;
    let src = r#"
        tree class Node {
            child Node* next;
            int depth = 0;
            virtual traversal mark() {}
        }
        tree class Cons : Node {
            traversal mark() { depth = this->depth + 1; this->next->mark(); }
        }
        tree class End : Node { }
    "#;
    let build = |heap: &mut Heap| {
        let mut cur = heap.alloc_by_name("End").unwrap();
        for _ in 0..SPINE {
            let cons = heap.alloc_by_name("Cons").unwrap();
            heap.set_child_by_name(cons, "next", Some(cur)).unwrap();
            cur = cons;
        }
        cur
    };
    with_stack(RUN_STACK, move || {
        let vm = run_once(&adhoc(src, "Node", &["mark"], Backend::Vm), &build);
        let jit = run_once(
            &adhoc(src, "Node", &["mark"], Backend::Jit(JitMode::Counted)),
            &build,
        );
        assert_identical("deep-spine vm vs jit", &vm, &jit);
        assert_eq!(
            jit.0.metrics.visits,
            SPINE as u64 + 1,
            "every spine node plus the terminator is visited"
        );
        assert!(
            jit.1[..SPINE]
                .iter()
                .all(|(_, slots)| slots[1] == SnapValue::Int(1)),
            "every Cons carries the incremented depth"
        );
    });
}

#[test]
fn jit_release_matches_counted_final_state_on_all_case_studies() {
    // Release mode drops the accounting, not the semantics: final trees,
    // final globals and the (still counted) visit totals are identical
    // to counted mode; every other counter reads zero.
    with_stack(RUN_STACK, || {
        for case in case_studies() {
            let build = |heap: &mut Heap| case.build_test(heap);
            let counted = run_once(&case.engine(Backend::Jit(JitMode::Counted)), &build);
            let release = {
                // No cache model: release mode records no traffic.
                let engine = case.engine(Backend::Jit(JitMode::Release));
                let mut session = engine.session();
                let root = session.build_tree(build);
                let report = session.run(root).expect("program runs");
                let snapshot = session.snapshot(root);
                (report, snapshot)
            };
            let name = case.name;
            assert_eq!(
                counted.1, release.1,
                "{name}: release-mode final tree diverges from counted"
            );
            assert_eq!(
                counted.0.globals, release.0.globals,
                "{name}: release-mode final globals diverge from counted"
            );
            assert_eq!(
                counted.0.metrics.visits, release.0.metrics.visits,
                "{name}: release mode must still count visits"
            );
            assert_eq!(
                (
                    release.0.metrics.instructions,
                    release.0.metrics.loads,
                    release.0.metrics.stores
                ),
                (0, 0, 0),
                "{name}: release mode must not charge instructions or memory traffic"
            );
        }
    });
}
