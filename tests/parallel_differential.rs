//! Parallel-vs-sequential differential suite for intra-tree parallelism.
//!
//! The contract under test: a parallel run (`Session::with_parallel`)
//! changes wall time and nothing else. For every case study, every
//! execution tier, and worker counts {1, 2, 4}, the heap snapshot,
//! [`Metrics`](grafter_runtime::Metrics), globals, and cache stats of a
//! parallel run must be bit-identical to the sequential run — the fork
//! orchestrator shards the heap per certified sibling subtree and merges
//! back in sibling order, so even simulated addresses agree.
//!
//! Also covered: a dependence-carrying workload (both children fold into
//! one global accumulator) that the analyzer must refuse to certify, the
//! cache-attached path (always sequential, still bit-identical), and a
//! fork-actually-happened check against the process-wide pool counters.

use grafter_engine::{pool_stats, Backend, Engine, JitMode, ParallelOptions, Report};
use grafter_runtime::with_stack;
use grafter_workloads::case_studies;

const STACK: usize = 64 << 20;

type Snapshot = Vec<(String, Vec<grafter_runtime::SnapValue>)>;

/// Aggressive options: fork at the top levels and consider every subtree
/// worth a shard, so test-sized trees actually scatter instead of hiding
/// behind the production `seq_cutoff`.
fn aggressive(workers: usize) -> ParallelOptions {
    ParallelOptions {
        workers,
        fork_depth: 4,
        seq_cutoff: 1,
    }
}

fn run_one(
    engine: &Engine,
    build: &(impl Fn(&mut grafter_runtime::Heap) -> grafter_runtime::NodeId + Sync),
    parallel: Option<ParallelOptions>,
) -> (Snapshot, Report) {
    let mut session = engine.session();
    if let Some(par) = parallel {
        session = session.with_parallel(par);
    }
    let root = session.build_tree(build);
    let report = session.run(root).expect("run succeeds");
    (session.snapshot(root), report)
}

fn assert_identical(seq: &(Snapshot, Report), par: &(Snapshot, Report), what: &str) {
    assert_eq!(seq.0, par.0, "{what}: heap snapshot diverged");
    assert_eq!(seq.1.metrics, par.1.metrics, "{what}: metrics diverged");
    assert_eq!(seq.1.globals, par.1.globals, "{what}: globals diverged");
    assert_eq!(seq.1.cache, par.1.cache, "{what}: cache stats diverged");
}

/// Every case study × tier × worker count: parallel == sequential, bit
/// for bit.
#[test]
fn parallel_matches_sequential_across_cases_and_tiers() {
    with_stack(STACK, || {
        let backends = [Backend::Interp, Backend::Vm, Backend::Jit(JitMode::Counted)];
        for case in case_studies() {
            for backend in backends {
                let engine = case.engine(backend);
                let build = |heap: &mut grafter_runtime::Heap| case.build_test(heap);
                let seq = run_one(&engine, &build, None);
                for workers in [1usize, 2, 4] {
                    let par = run_one(&engine, &build, Some(aggressive(workers)));
                    let what = format!("{} on {:?} with {} workers", case.name, backend, workers);
                    assert_identical(&seq, &par, &what);
                }
            }
        }
    });
}

/// JIT release mode reports visits only; the parallel path must preserve
/// exactly that shape (interpreted fork levels must not leak full
/// instruction counts into the release report).
#[test]
fn parallel_matches_sequential_jit_release() {
    with_stack(STACK, || {
        for case in case_studies() {
            let engine = case.engine(Backend::Jit(JitMode::Release));
            let build = |heap: &mut grafter_runtime::Heap| case.build_test(heap);
            let seq = run_one(&engine, &build, None);
            let par = run_one(&engine, &build, Some(aggressive(4)));
            assert_identical(&seq, &par, &format!("{} on Jit(Release)", case.name));
            assert_eq!(par.1.metrics.instructions, 0, "release reports visits only");
        }
    });
}

/// Both children fold into one global accumulator — a loop-carried
/// dependence through `SUM` — so the analyzer must refuse to certify any
/// parallel run, and the parallel session must fall back to sequential
/// execution with identical results.
#[test]
fn dependence_carrying_workload_is_refused() {
    let src = r#"
        global float SUM = 0.0;

        tree class Node {
            child Node* left;
            child Node* right;
            float val = 1.0;
            virtual traversal accumulate() {}
        }
        tree class Inner : Node {
            traversal accumulate() {
                SUM = SUM + val;
                this->left->accumulate();
                this->right->accumulate();
            }
        }
        tree class Leaf : Node {
            traversal accumulate() {
                SUM = SUM + val;
            }
        }
    "#;
    let engine = Engine::builder()
        .source(src)
        .entry("Node", &["accumulate"])
        .backend(Backend::Vm)
        .build()
        .expect("engine builds");
    assert!(
        !engine.fused_program().par.any_parallel(),
        "global-accumulator traversal must not be certified parallel-safe"
    );

    fn build(heap: &mut grafter_runtime::Heap, depth: u32) -> grafter_runtime::NodeId {
        if depth == 0 {
            return heap.alloc_by_name("Leaf").expect("alloc leaf");
        }
        let node = heap.alloc_by_name("Inner").expect("alloc inner");
        let left = build(heap, depth - 1);
        let right = build(heap, depth - 1);
        heap.set_child_by_name(node, "left", Some(left)).unwrap();
        heap.set_child_by_name(node, "right", Some(right)).unwrap();
        node
    }

    let builder = |heap: &mut grafter_runtime::Heap| build(heap, 6);
    let seq = run_one(&engine, &builder, None);
    let par = run_one(&engine, &builder, Some(aggressive(4)));
    assert_identical(&seq, &par, "dependence-carrying accumulator");
    assert_eq!(
        seq.1.global("SUM"),
        par.1.global("SUM"),
        "accumulated global must agree"
    );
}

/// A cache-attached session is inherently address-ordered, so the engine
/// ignores the parallel request and stays sequential — and bit-identical,
/// including the simulated cache traffic.
#[test]
fn cache_attached_sessions_stay_sequential() {
    with_stack(STACK, || {
        let case = case_studies()
            .into_iter()
            .find(|c| c.name == "kdtree")
            .expect("kdtree case exists");
        let engine = case.engine(Backend::Vm);
        let build = |heap: &mut grafter_runtime::Heap| case.build_test(heap);

        let cache = grafter_cachesim::CacheHierarchy::xeon();
        let mut seq_sess = engine.session().with_cache(cache.clone());
        let root = seq_sess.build_tree(build);
        let seq = seq_sess.run(root).expect("sequential cache run");
        let seq_snap = seq_sess.snapshot(root);

        let mut par_sess = engine
            .session()
            .with_cache(cache)
            .with_parallel(aggressive(4));
        let root = par_sess.build_tree(build);
        let par = par_sess.run(root).expect("parallel-requested cache run");
        let par_snap = par_sess.snapshot(root);

        assert!(seq.cache.is_some(), "cache stats reported");
        assert_eq!(seq_snap, par_snap, "cache-attached snapshot diverged");
        assert_eq!(seq.metrics, par.metrics, "cache-attached metrics diverged");
        assert_eq!(seq.cache, par.cache, "simulated cache traffic diverged");
    });
}

/// The parallel path must actually fork: at least one case study has a
/// certified parallel-safe run, and running it with multiple workers
/// pushes jobs through the process-wide pool.
#[test]
fn parallel_run_actually_forks() {
    with_stack(STACK, || {
        let case = case_studies()
            .into_iter()
            .find(|c| c.name == "kdtree")
            .expect("kdtree case exists");
        let engine = case.engine(Backend::Vm);
        assert!(
            engine.fused_program().par.any_parallel(),
            "kdtree must have a certified parallel-safe call run"
        );

        let before = pool_stats().jobs_executed;
        let build = |heap: &mut grafter_runtime::Heap| case.build_test(heap);
        let _ = run_one(&engine, &build, Some(aggressive(4)));
        let after = pool_stats().jobs_executed;
        assert!(
            after > before,
            "a 4-worker run over a certified program must submit pool jobs \
             (before={before}, after={after})"
        );
    });
}
