//! Property-based soundness testing: for randomly generated traversal
//! programs and random input trees, the fused execution must leave the
//! tree in exactly the state the unfused execution does (the paper's
//! central soundness claim, §3.3).
//!
//! Programs are drawn from a template family over a `Node / Cons / End`
//! list skeleton: each traversal is a random sequence of field updates,
//! cross-node reads/writes, conditional early returns, and recursive calls
//! (possibly mutually recursive into the other generated traversals, and
//! placed pre-, mid- or post-order). This exercises statement reordering,
//! call grouping, type-specific partial fusion and truncation together.

use grafter::{fuse, FuseOptions};
use grafter_frontend::compile;
use grafter_runtime::{Heap, Interp, Value};
use proptest::prelude::*;

/// One generated simple statement.
#[derive(Clone, Debug)]
enum Tmpl {
    /// `<f1> = <f2> + k;`
    SelfRmw(usize, usize, i64),
    /// `<f1> = this->next.<f2> + k;` (pull up)
    PullUp(usize, usize, i64),
    /// `this->next.<f1> = <f2>;` (push down)
    PushDown(usize, usize),
    /// `if (stop) { return; }`
    CondReturn,
    /// `if (<f1> > k) { <f2> = <f3> - 1; }`
    CondUpdate(usize, usize, usize, i64),
}

const FIELDS: [&str; 3] = ["a", "b", "c"];

impl Tmpl {
    fn render(&self) -> String {
        match *self {
            Tmpl::SelfRmw(f1, f2, k) => {
                format!("{} = {} + {k};", FIELDS[f1 % 3], FIELDS[f2 % 3])
            }
            Tmpl::PullUp(f1, f2, k) => format!(
                "{} = this->next.{} + {k};",
                FIELDS[f1 % 3],
                FIELDS[f2 % 3]
            ),
            Tmpl::PushDown(f1, f2) => {
                format!("this->next.{} = {};", FIELDS[f1 % 3], FIELDS[f2 % 3])
            }
            Tmpl::CondReturn => "if (stop) { return; }".into(),
            Tmpl::CondUpdate(f1, f2, f3, k) => format!(
                "if ({} > {k}) {{ {} = {} - 1; }}",
                FIELDS[f1 % 3],
                FIELDS[f2 % 3],
                FIELDS[f3 % 3]
            ),
        }
    }
}

fn tmpl_strategy() -> impl Strategy<Value = Tmpl> {
    prop_oneof![
        (0..3usize, 0..3usize, -3..4i64).prop_map(|(a, b, k)| Tmpl::SelfRmw(a, b, k)),
        (0..3usize, 0..3usize, -3..4i64).prop_map(|(a, b, k)| Tmpl::PullUp(a, b, k)),
        (0..3usize, 0..3usize).prop_map(|(a, b)| Tmpl::PushDown(a, b)),
        Just(Tmpl::CondReturn),
        (0..3usize, 0..3usize, 0..3usize, -2..6i64)
            .prop_map(|(a, b, c, k)| Tmpl::CondUpdate(a, b, c, k)),
    ]
}

/// A generated traversal: statements plus recursion positions.
#[derive(Clone, Debug)]
struct GenTraversal {
    stmts: Vec<Tmpl>,
    /// Where the self-recursion call goes (index into stmts, clamped).
    recurse_at: usize,
    /// Optionally also call this other traversal index on next.
    also_call: Option<usize>,
}

fn traversal_strategy() -> impl Strategy<Value = GenTraversal> {
    (
        proptest::collection::vec(tmpl_strategy(), 1..5),
        0..5usize,
        proptest::option::of(0..3usize),
    )
        .prop_map(|(stmts, recurse_at, also_call)| GenTraversal {
            stmts,
            recurse_at,
            also_call,
        })
}

/// Renders the whole program for `n` generated traversals.
fn render_program(traversals: &[GenTraversal]) -> String {
    let mut src = String::from(
        "tree class Node {\n  child Node* next;\n  int a = 0; int b = 0; int c = 0;\n  bool stop = false;\n",
    );
    for i in 0..traversals.len() {
        src.push_str(&format!("  virtual traversal t{i}() {{}}\n"));
    }
    src.push_str("}\ntree class Cons : Node {\n");
    for (i, t) in traversals.iter().enumerate() {
        src.push_str(&format!("  traversal t{i}() {{\n"));
        let at = t.recurse_at.min(t.stmts.len());
        for (j, s) in t.stmts.iter().enumerate() {
            if j == at {
                src.push_str(&format!("    this->next->t{i}();\n"));
                if let Some(o) = t.also_call {
                    let o = o % traversals.len();
                    src.push_str(&format!("    this->next->t{o}();\n"));
                }
            }
            src.push_str(&format!("    {}\n", s.render()));
        }
        if at >= t.stmts.len() {
            src.push_str(&format!("    this->next->t{i}();\n"));
            if let Some(o) = t.also_call {
                let o = o % traversals.len();
                src.push_str(&format!("    this->next->t{o}();\n"));
            }
        }
        src.push_str("  }\n");
    }
    src.push_str("}\ntree class End : Node { }\n");
    src
}

fn list_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64, bool)>> {
    proptest::collection::vec(
        (-5..6i64, -5..6i64, -5..6i64, proptest::bool::weighted(0.15)),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fused_equals_unfused_on_random_programs(
        traversals in proptest::collection::vec(traversal_strategy(), 1..4),
        list in list_strategy(),
    ) {
        let src = render_program(&traversals);
        let program = compile(&src).expect("generated programs are valid");
        let names: Vec<String> = (0..traversals.len()).map(|i| format!("t{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

        let fused = fuse(&program, "Node", &name_refs, &FuseOptions::default()).unwrap();
        let unfused = fuse(&program, "Node", &name_refs, &FuseOptions::unfused()).unwrap();

        let snapshot = |fp: &grafter::FusedProgram| {
            let mut heap = Heap::new(&program);
            let mut cur = heap.alloc_by_name("End").unwrap();
            for &(a, b, c, stop) in list.iter().rev() {
                let n = heap.alloc_by_name("Cons").unwrap();
                heap.set_by_name(n, "a", Value::Int(a)).unwrap();
                heap.set_by_name(n, "b", Value::Int(b)).unwrap();
                heap.set_by_name(n, "c", Value::Int(c)).unwrap();
                heap.set_by_name(n, "stop", Value::Bool(stop)).unwrap();
                heap.set_child_by_name(n, "next", Some(cur)).unwrap();
                cur = n;
            }
            let mut interp = Interp::new(fp);
            interp.run(&mut heap, cur, &[]).unwrap();
            (heap.snapshot(cur), interp.metrics.visits)
        };

        let (snap_f, visits_f) = snapshot(&fused);
        let (snap_u, visits_u) = snapshot(&unfused);
        prop_assert_eq!(snap_f, snap_u, "program:\n{}", src);
        prop_assert!(visits_f <= visits_u, "fusion never increases visits");
    }

    #[test]
    fn fusion_terminates_on_recursive_schedules(
        traversals in proptest::collection::vec(traversal_strategy(), 1..3),
    ) {
        // Even adversarial multi-call programs must terminate fusion with
        // a bounded function count (the §4 cutoffs).
        let src = render_program(&traversals);
        let program = compile(&src).expect("generated programs are valid");
        let names: Vec<String> = (0..traversals.len()).map(|i| format!("t{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let fp = fuse(&program, "Node", &name_refs, &FuseOptions::default()).unwrap();
        prop_assert!(fp.n_functions() < 2_000, "got {}", fp.n_functions());
    }
}
