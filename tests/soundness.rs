//! Randomised soundness testing: for randomly generated traversal
//! programs and random input trees, the fused execution must leave the
//! tree in exactly the state the unfused execution does (the paper's
//! central soundness claim, §3.3).
//!
//! Programs are drawn from a template family over a `Node / Cons / End`
//! list skeleton: each traversal is a random sequence of field updates,
//! cross-node reads/writes, conditional early returns, and recursive calls
//! (possibly mutually recursive into the other generated traversals, and
//! placed pre-, mid- or post-order). This exercises statement reordering,
//! call grouping, type-specific partial fusion and truncation together.
//!
//! Originally written against proptest; the build environment is offline,
//! so cases are drawn from the vendored deterministic `rand` shim with
//! fixed seeds, and every run is identical. The whole flow goes through
//! `grafter::Compiled` and the `grafter_engine::Engine` API.

use grafter::{Compiled, FuseOptions};
use grafter_engine::Engine;
use grafter_runtime::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated simple statement.
#[derive(Clone, Debug)]
enum Tmpl {
    /// `<f1> = <f2> + k;`
    SelfRmw(usize, usize, i64),
    /// `<f1> = this->next.<f2> + k;` (pull up)
    PullUp(usize, usize, i64),
    /// `this->next.<f1> = <f2>;` (push down)
    PushDown(usize, usize),
    /// `if (stop) { return; }`
    CondReturn,
    /// `if (<f1> > k) { <f2> = <f3> - 1; }`
    CondUpdate(usize, usize, usize, i64),
}

const FIELDS: [&str; 3] = ["a", "b", "c"];

impl Tmpl {
    fn random(rng: &mut StdRng) -> Tmpl {
        match rng.gen_range(0..5usize) {
            0 => Tmpl::SelfRmw(
                rng.gen_range(0..3),
                rng.gen_range(0..3),
                rng.gen_range(-3..4),
            ),
            1 => Tmpl::PullUp(
                rng.gen_range(0..3),
                rng.gen_range(0..3),
                rng.gen_range(-3..4),
            ),
            2 => Tmpl::PushDown(rng.gen_range(0..3), rng.gen_range(0..3)),
            3 => Tmpl::CondReturn,
            _ => Tmpl::CondUpdate(
                rng.gen_range(0..3),
                rng.gen_range(0..3),
                rng.gen_range(0..3),
                rng.gen_range(-2..6),
            ),
        }
    }

    fn render(&self) -> String {
        match *self {
            Tmpl::SelfRmw(f1, f2, k) => {
                format!("{} = {} + {k};", FIELDS[f1 % 3], FIELDS[f2 % 3])
            }
            Tmpl::PullUp(f1, f2, k) => {
                format!("{} = this->next.{} + {k};", FIELDS[f1 % 3], FIELDS[f2 % 3])
            }
            Tmpl::PushDown(f1, f2) => {
                format!("this->next.{} = {};", FIELDS[f1 % 3], FIELDS[f2 % 3])
            }
            Tmpl::CondReturn => "if (stop) { return; }".into(),
            Tmpl::CondUpdate(f1, f2, f3, k) => format!(
                "if ({} > {k}) {{ {} = {} - 1; }}",
                FIELDS[f1 % 3],
                FIELDS[f2 % 3],
                FIELDS[f3 % 3]
            ),
        }
    }
}

/// A generated traversal: statements plus recursion positions.
#[derive(Clone, Debug)]
struct GenTraversal {
    stmts: Vec<Tmpl>,
    /// Where the self-recursion call goes (index into stmts, clamped).
    recurse_at: usize,
    /// Optionally also call this other traversal index on next.
    also_call: Option<usize>,
}

impl GenTraversal {
    fn random(rng: &mut StdRng) -> GenTraversal {
        let n = rng.gen_range(1..5usize);
        GenTraversal {
            stmts: (0..n).map(|_| Tmpl::random(rng)).collect(),
            recurse_at: rng.gen_range(0..5usize),
            also_call: if rng.gen_bool(0.5) {
                Some(rng.gen_range(0..3usize))
            } else {
                None
            },
        }
    }
}

/// Renders the whole program for `n` generated traversals.
fn render_program(traversals: &[GenTraversal]) -> String {
    let mut src = String::from(
        "tree class Node {\n  child Node* next;\n  int a = 0; int b = 0; int c = 0;\n  bool stop = false;\n",
    );
    for i in 0..traversals.len() {
        src.push_str(&format!("  virtual traversal t{i}() {{}}\n"));
    }
    src.push_str("}\ntree class Cons : Node {\n");
    for (i, t) in traversals.iter().enumerate() {
        src.push_str(&format!("  traversal t{i}() {{\n"));
        let at = t.recurse_at.min(t.stmts.len());
        for (j, s) in t.stmts.iter().enumerate() {
            if j == at {
                src.push_str(&format!("    this->next->t{i}();\n"));
                if let Some(o) = t.also_call {
                    let o = o % traversals.len();
                    src.push_str(&format!("    this->next->t{o}();\n"));
                }
            }
            src.push_str(&format!("    {}\n", s.render()));
        }
        if at >= t.stmts.len() {
            src.push_str(&format!("    this->next->t{i}();\n"));
            if let Some(o) = t.also_call {
                let o = o % traversals.len();
                src.push_str(&format!("    this->next->t{o}();\n"));
            }
        }
        src.push_str("  }\n");
    }
    src.push_str("}\ntree class End : Node { }\n");
    src
}

fn random_list(rng: &mut StdRng) -> Vec<(i64, i64, i64, bool)> {
    let n = rng.gen_range(1..10usize);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(-5..6),
                rng.gen_range(-5..6),
                rng.gen_range(-5..6),
                rng.gen_bool(0.15),
            )
        })
        .collect()
}

fn random_traversals(rng: &mut StdRng, max: usize) -> Vec<GenTraversal> {
    let n = rng.gen_range(1..max);
    (0..n).map(|_| GenTraversal::random(rng)).collect()
}

#[test]
fn fused_equals_unfused_on_random_programs() {
    let mut rng = StdRng::seed_from_u64(0x5041_4C44);
    for case in 0..48 {
        let traversals = random_traversals(&mut rng, 4);
        let list = random_list(&mut rng);

        let src = render_program(&traversals);
        let compiled = Compiled::compile(src.as_str()).expect("generated programs are valid");
        let names: Vec<String> = (0..traversals.len()).map(|i| format!("t{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

        let engine_with = |opts: FuseOptions| {
            Engine::builder()
                .compiled(compiled.clone())
                .entry("Node", &name_refs)
                .fusion(opts)
                .build()
                .unwrap()
        };
        let fused = engine_with(FuseOptions::default());
        let unfused = engine_with(FuseOptions::unfused());

        let snapshot = |engine: &Engine| {
            let mut session = engine.session();
            let root = session.build_tree(|heap| {
                let mut cur = heap.alloc_by_name("End").unwrap();
                for &(a, b, c, stop) in list.iter().rev() {
                    let n = heap.alloc_by_name("Cons").unwrap();
                    heap.set_by_name(n, "a", Value::Int(a)).unwrap();
                    heap.set_by_name(n, "b", Value::Int(b)).unwrap();
                    heap.set_by_name(n, "c", Value::Int(c)).unwrap();
                    heap.set_by_name(n, "stop", Value::Bool(stop)).unwrap();
                    heap.set_child_by_name(n, "next", Some(cur)).unwrap();
                    cur = n;
                }
                cur
            });
            let report = session.run(root).unwrap();
            (session.snapshot(root), report.metrics.visits)
        };

        let (snap_f, visits_f) = snapshot(&fused);
        let (snap_u, visits_u) = snapshot(&unfused);
        assert_eq!(snap_f, snap_u, "case {case} diverged; program:\n{src}");
        assert!(
            visits_f <= visits_u,
            "fusion never increases visits (case {case})"
        );
    }
}

#[test]
fn fusion_terminates_on_recursive_schedules() {
    // Even adversarial multi-call programs must terminate fusion with
    // a bounded function count (the §4 cutoffs).
    let mut rng = StdRng::seed_from_u64(0x4652_4545);
    for case in 0..48 {
        let traversals = random_traversals(&mut rng, 3);
        let src = render_program(&traversals);
        let compiled = Compiled::compile(src.as_str()).expect("generated programs are valid");
        let names: Vec<String> = (0..traversals.len()).map(|i| format!("t{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let fused = compiled.fuse_default("Node", &name_refs).unwrap();
        let n = fused.metrics().functions;
        assert!(n < 2_000, "case {case}: got {n}");
    }
}
