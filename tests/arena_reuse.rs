//! Arena-reuse contract of the session layer: a heap arena recycled with
//! [`Session::reset`] (and by the pooled `run_batch` workers) must be
//! observationally indistinguishable from a fresh heap — bit-identical
//! `Report`s (metrics *and* simulated cache traffic) and heap snapshots —
//! for all four case studies on both backends.
//!
//! [`Session::reset`]: grafter_engine::Session::reset

use std::thread;

use grafter_cachesim::CacheHierarchy;
use grafter_engine::{Backend, BatchOptions, Engine, Report};
use grafter_runtime::{Heap, NodeId, SnapValue};
use grafter_workloads::case_studies;

/// Worker stack: traversals recurse once per tree level.
const STACK: usize = 256 << 20;

type Snapshot = Vec<(String, Vec<SnapValue>)>;

/// Baseline: a fresh session per run, cache attached.
fn fresh_run(
    engine: &Engine,
    build: fn(&mut Heap, usize, u64) -> NodeId,
    size: usize,
) -> (Report, Snapshot) {
    let mut session = engine.session().with_cache(CacheHierarchy::xeon());
    let root = session.build_tree(|heap| build(heap, size, 42));
    let report = session.run(root).expect("case study runs");
    let snapshot = session.snapshot(root);
    (report, snapshot)
}

#[test]
fn reset_sessions_match_fresh_sessions_all_cases_both_backends() {
    for backend in [Backend::Interp, Backend::Vm] {
        for case in case_studies() {
            let name = case.name;
            let build = case.build;
            let size = case.test_size;
            let engine = case.engine(backend);
            thread::Builder::new()
                .stack_size(STACK)
                .spawn(move || {
                    let baseline = fresh_run(&engine, build, size);
                    // One session serving three consecutive requests on a
                    // recycled arena.
                    let mut pooled = engine.session().with_cache(CacheHierarchy::xeon());
                    for round in 0..3 {
                        pooled.reset();
                        let root = pooled.build_tree(|heap| build(heap, size, 42));
                        let report = pooled.run(root).expect("case study runs");
                        assert_eq!(
                            report, baseline.0,
                            "{name}/{backend:?}: report diverges on reused arena (round {round})"
                        );
                        assert_eq!(
                            report.cache, baseline.0.cache,
                            "{name}/{backend:?}: cache traffic diverges on reused arena"
                        );
                        assert_eq!(
                            pooled.snapshot(root),
                            baseline.1,
                            "{name}/{backend:?}: snapshot diverges on reused arena"
                        );
                    }
                })
                .unwrap()
                .join()
                .unwrap();
        }
    }
}

#[test]
fn pooled_batch_workers_stay_input_ordered_and_deterministic() {
    for backend in [Backend::Interp, Backend::Vm] {
        for case in case_studies() {
            let name = case.name;
            let build = case.build;
            // Different sizes (and thus visit counts) per slot, so any
            // reordering or cross-input state leak is visible.
            let sizes: Vec<usize> = (1..=8)
                .map(|i| (case.test_size * i).div_ceil(8).max(1))
                .collect();
            let engine = case.engine(backend);
            let sequential: Vec<Report> = sizes
                .iter()
                .map(|&size| {
                    let engine = &engine;
                    thread::scope(|scope| {
                        thread::Builder::new()
                            .stack_size(STACK)
                            .spawn_scoped(scope, move || {
                                let mut s = engine.session();
                                let root = s.build_tree(|heap| build(heap, size, 42));
                                s.run(root).expect("case study runs")
                            })
                            .unwrap()
                            .join()
                            .unwrap()
                    })
                })
                .collect();
            for workers in [1, 3] {
                let inputs: Vec<_> = sizes
                    .iter()
                    .map(|&size| move |heap: &mut Heap| build(heap, size, 42))
                    .collect();
                let opts = BatchOptions {
                    workers,
                    stack_bytes: STACK,
                    ..BatchOptions::default()
                };
                let batch = engine.run_batch_with(inputs, &opts).expect("batch runs");
                assert_eq!(
                    batch, sequential,
                    "{name}/{backend:?}: pooled batch diverges at {workers} workers"
                );
            }
        }
    }
}
