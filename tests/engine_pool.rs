//! The persistent batch worker pool: steady-state batches spawn zero
//! threads, panicking inputs poison only their own pooled session, and
//! the streamed API delivers the same results in input order under a
//! bounded window.

use grafter_engine::{pool_stats, Backend, BatchOptions, Engine};
use grafter_runtime::Heap;
use grafter_workloads::case_studies;

fn list_engine() -> Engine {
    let src = r#"
        tree class Node {
            child Node* next;
            int a = 0;
            virtual traversal inc() {}
        }
        tree class Cons : Node {
            traversal inc() { a = a + 1; this->next->inc(); }
        }
        tree class End : Node { }
    "#;
    Engine::builder()
        .source(src)
        .entry("Node", &["inc"])
        .backend(Backend::Vm)
        .build()
        .expect("list program compiles")
}

fn list_of(len: usize) -> impl Fn(&mut Heap) -> grafter_runtime::NodeId {
    move |heap: &mut Heap| {
        let mut node = heap.alloc_by_name("End").unwrap();
        for _ in 0..len {
            let cons = heap.alloc_by_name("Cons").unwrap();
            heap.set_child_by_name(cons, "next", Some(node)).unwrap();
            node = cons;
        }
        node
    }
}

#[test]
fn steady_state_batches_spawn_zero_threads() {
    let engine = list_engine();
    let opts = BatchOptions::with_workers(4);
    let inputs = |n: usize| (0..n).map(|_| list_of(16)).collect::<Vec<_>>();

    // Warm-up grows the pool.
    engine
        .run_batch_with(inputs(8), &opts)
        .expect("warm-up batch");
    let warm = pool_stats();
    assert!(warm.spawned_total >= 4, "pool grew to the requested width");

    // Steady state: many more batches, zero new threads.
    for _ in 0..5 {
        let reports = engine.run_batch_with(inputs(8), &opts).expect("batch");
        assert_eq!(reports.len(), 8);
        assert!(reports.iter().all(|r| r.global("a").is_none()));
    }
    let steady = pool_stats();
    assert_eq!(
        steady.spawned_total, warm.spawned_total,
        "steady-state batches must not spawn threads"
    );
    assert!(steady.jobs_executed > warm.jobs_executed);
}

#[test]
fn panicking_input_poisons_only_its_session() {
    let engine = list_engine();
    let n = 12;
    let panic_at = 5;
    type Input = Box<dyn FnOnce(&mut Heap) -> grafter_runtime::NodeId + Send>;
    let inputs: Vec<Input> = (0..n)
        .map(|i| {
            let build = list_of(8);
            let f: Input = if i == panic_at {
                Box::new(move |_: &mut Heap| panic!("request {panic_at} exploded"))
            } else {
                Box::new(move |heap: &mut Heap| build(heap))
            };
            f
        })
        .collect();

    let results = engine.try_run_batch(inputs, &BatchOptions::with_workers(3));
    assert_eq!(results.len(), n);
    for (i, result) in results.iter().enumerate() {
        if i == panic_at {
            let err = result.as_ref().expect_err("panicking input must error");
            let rendered = err.to_string();
            assert!(
                rendered.contains("worker panicked") && rendered.contains("exploded"),
                "typed runtime error names the panic: {rendered}"
            );
        } else {
            let report = result.as_ref().expect("other inputs unaffected");
            assert_eq!(report.metrics.visits, 9, "8 Cons + 1 End");
        }
    }

    // The engine (and pool) survive: the next batch is clean and
    // bit-identical to an unpoisoned run.
    let clean = engine
        .run_batch_with(
            (0..4).map(|_| list_of(8)).collect(),
            &BatchOptions::with_workers(3),
        )
        .expect("post-panic batch");
    assert!(clean.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn streamed_batches_arrive_in_order_with_bounded_window() {
    let engine = list_engine();
    for window in [1, 2, 7] {
        let n = 17;
        let mut seen = Vec::new();
        engine.run_batch_streamed(
            (0..n).map(|i| list_of(4 + (i % 3))).collect(),
            &BatchOptions::with_workers(4),
            window,
            |i, result| seen.push((i, result.expect("streamed input runs"))),
        );
        let order: Vec<usize> = seen.iter().map(|&(i, _)| i).collect();
        assert_eq!(order, (0..n).collect::<Vec<_>>(), "window={window}");

        // Same results as the collect-everything API, element for element.
        let collected = engine
            .run_batch_with(
                (0..n).map(|i| list_of(4 + (i % 3))).collect(),
                &BatchOptions::with_workers(4),
            )
            .expect("reference batch");
        for (i, (idx, report)) in seen.into_iter().enumerate() {
            assert_eq!(i, idx);
            assert_eq!(report, collected[i], "window={window} input {i}");
        }
    }
}

#[test]
fn case_study_batches_stay_bit_identical_through_the_pool() {
    for case in case_studies() {
        let engine = case.engine(Backend::Vm);
        let build = case.build;
        let size = case.test_size;
        let inputs: Vec<_> = (0..6)
            .map(|_| move |heap: &mut Heap| build(heap, size, 42))
            .collect();
        let reports = engine
            .run_batch_with(inputs, &BatchOptions::with_workers(3))
            .unwrap_or_else(|e| panic!("{}: batch failed: {e}", case.name));
        assert!(
            reports.windows(2).all(|w| w[0] == w[1]),
            "{}: pooled batch reports must be bit-identical",
            case.name
        );
    }
}
