//! The zero-cost probe layer's correctness contract: observing a run
//! must not change it.
//!
//! For every case study and every tier whose accounting is bit-exact
//! (interp, VM `O2`, JIT counted), a run with a recording probe attached
//! must produce exactly the heap snapshot, metrics, simulated cache
//! traffic and final globals of the unprobed run — profiling is a pure
//! read. On top of that the suite pins what the probe actually delivers:
//! every compile stage appears in the `CompileTrace` (with the `opt/*`
//! passes on the compiled tiers), each tier records at least one
//! populated runtime profile of its expected shape, batch runs deliver
//! per-worker telemetry, and the Chrome trace-event export round-trips
//! through the hand-rolled JSON parser's schema check.

use std::sync::Arc;

use grafter::FusionOptions;
use grafter_cachesim::CacheHierarchy;
use grafter_engine::{Backend, Engine, JitMode, Probe, Report, TraceProbe};
use grafter_obs::json::{parse, validate_chrome_trace};
use grafter_runtime::{with_stack, Heap, NodeId, SnapValue};
use grafter_workloads::case_studies;
use grafter_workloads::harness::RUN_STACK;

type Snapshot = Vec<(String, Vec<SnapValue>)>;

/// The tiers with bit-exact accounting, with the probe's tier label.
const TIERS: [Backend; 3] = [Backend::Interp, Backend::Vm, Backend::Jit(JitMode::Counted)];

fn run_once(engine: &Engine, build: &dyn Fn(&mut Heap) -> NodeId) -> (Report, Snapshot) {
    let mut session = engine.session().with_cache(CacheHierarchy::xeon());
    let root = session.build_tree(build);
    let report = session.run(root).expect("program runs");
    let snapshot = session.snapshot(root);
    (report, snapshot)
}

#[test]
fn probed_runs_are_bit_identical_to_unprobed_on_all_case_studies() {
    with_stack(RUN_STACK, || {
        for case in case_studies() {
            for backend in TIERS {
                let plain = case.engine(backend);
                let probe = Arc::new(TraceProbe::new());
                let probed = case.engine_probed(backend, Arc::clone(&probe) as Arc<dyn Probe>);
                let build = |heap: &mut Heap| case.build_test(heap);
                let (r_plain, s_plain) = run_once(&plain, &build);
                let (r_probed, s_probed) = run_once(&probed, &build);
                let label = format!("{}/{backend}", case.name);
                assert_eq!(s_plain, s_probed, "{label}: probing changed the heap");
                assert_eq!(
                    r_plain.metrics, r_probed.metrics,
                    "{label}: probing changed the metrics"
                );
                assert_eq!(
                    r_plain.cache, r_probed.cache,
                    "{label}: probing changed simulated cache traffic"
                );
                assert_eq!(
                    r_plain.globals, r_probed.globals,
                    "{label}: probing changed final globals"
                );
                // Report equality deliberately ignores the trace field.
                assert_eq!(r_plain, r_probed, "{label}: probed Report compares unequal");
                assert!(
                    r_plain.trace.is_none(),
                    "{label}: unprobed run grew a trace"
                );
                assert!(r_probed.trace.is_some(), "{label}: probed run has no trace");
            }
        }
    });
}

#[test]
fn every_tier_records_a_populated_profile_of_its_shape() {
    with_stack(RUN_STACK, || {
        let case = &case_studies()[0]; // ast: rich pass pipeline
        for backend in TIERS {
            let probe = Arc::new(TraceProbe::new());
            let engine = case.engine_probed(backend, Arc::clone(&probe) as Arc<dyn Probe>);
            run_once(&engine, &|heap| case.build_test(heap));
            let runs = probe.runs();
            assert_eq!(runs.len(), 1, "{backend}: expected exactly one RunTrace");
            let run = &runs[0];
            assert_eq!(run.tier, backend.to_string());
            let p = &run.profile;
            assert!(!p.is_empty(), "{backend}: empty profile");
            match backend {
                Backend::Interp => {
                    assert!(!p.class_visits.is_empty(), "interp records class visits");
                    assert!(p.class_visits.iter().all(|&(_, n)| n > 0));
                }
                Backend::Vm => {
                    assert!(!p.func_hits.is_empty(), "vm records function hits");
                    assert!(!p.op_fires.is_empty(), "vm records an opcode histogram");
                    assert!(!p.block_hits.is_empty(), "vm derives basic-block hits");
                    // The fired-instruction total equals the dispatch
                    // loop's executed-op count only if every pc was hooked.
                    let fired: u64 = p.op_fires.iter().map(|o| o.fires).sum();
                    assert!(fired > 0);
                }
                Backend::Jit(_) => {
                    assert!(!p.func_hits.is_empty(), "jit records function activations");
                    assert!(!p.block_hits.is_empty(), "jit records block entries");
                }
            }
        }
    });
}

#[test]
fn compile_trace_names_every_stage_per_tier() {
    with_stack(RUN_STACK, || {
        for case in case_studies() {
            // Build from source so the frontend stages appear.
            let probe = Arc::new(TraceProbe::new());
            Engine::builder()
                .source(case.source)
                .entry(case.root_class, &case.passes)
                .backend(Backend::Jit(JitMode::Counted))
                .probe(Arc::clone(&probe) as Arc<dyn Probe>)
                .build()
                .expect("case study builds");
            let trace = probe.compile().expect("probe saw the build");
            let stages = trace.stage_names();
            for expected in ["parse", "sema", "fusion", "lower", "jit"] {
                assert!(
                    stages.contains(&expected),
                    "{}: stage `{expected}` missing from {stages:?}",
                    case.name
                );
            }
            assert!(
                stages.iter().any(|s| s.starts_with("opt/")),
                "{}: no optimizer pass spans in {stages:?}",
                case.name
            );
            // Engines keep their compile trace even without a probe.
            let unprobed = case.engine(Backend::Vm);
            assert!(unprobed.compile_trace().stage_names().contains(&"fusion"));
        }
    });
}

#[test]
fn chrome_trace_round_trips_schema_check() {
    with_stack(RUN_STACK, || {
        let case = &case_studies()[0];
        let probe = Arc::new(TraceProbe::new());
        let engine = case.engine_probed(
            Backend::Jit(JitMode::Counted),
            Arc::clone(&probe) as Arc<dyn Probe>,
        );
        run_once(&engine, &|heap| case.build_test(heap));
        let rendered = probe.chrome_trace();
        let doc = parse(&rendered).expect("chrome trace is valid JSON");
        let events = validate_chrome_trace(&doc).expect("chrome trace passes the schema check");
        // At least the compile envelope, its stages, and one run track.
        assert!(events > 5, "suspiciously few trace events: {events}");
        let summary = probe.summary();
        assert!(
            summary.contains("compile ("),
            "summary names the compile section"
        );
        assert!(summary.contains("run#0"), "summary names the run");
    });
}

#[test]
fn batch_runs_deliver_per_worker_telemetry() {
    with_stack(RUN_STACK, || {
        let case = &case_studies()[0];
        let probe = Arc::new(TraceProbe::new());
        let engine = case.engine_probed(Backend::Vm, Arc::clone(&probe) as Arc<dyn Probe>);
        let trees = 6;
        let inputs: Vec<_> = (0..trees)
            .map(|_| |heap: &mut Heap| case.build_test(heap))
            .collect();
        let reports = engine
            .run_batch_with(inputs, &grafter_engine::BatchOptions::with_workers(2))
            .expect("batch runs");
        assert_eq!(reports.len(), trees);
        // Pooled batch sessions stay bit-identical under probing.
        assert!(reports.windows(2).all(|w| w[0] == w[1]));
        let batches = probe.batches();
        assert_eq!(batches.len(), 1, "one batch fan-out, one BatchTrace");
        let batch = &batches[0];
        assert_eq!(batch.workers.len(), 2);
        let total_inputs: u64 = batch.workers.iter().map(|w| w.inputs).sum();
        let total_resets: u64 = batch.workers.iter().map(|w| w.resets).sum();
        assert_eq!(total_inputs, trees as u64);
        assert_eq!(total_resets, trees as u64);
        // Every input also produced an individual RunTrace.
        assert_eq!(probe.runs().len(), trees);
    });
}

#[test]
fn fusion_coverage_counts_fused_and_missed_pairs() {
    with_stack(RUN_STACK, || {
        for case in case_studies() {
            let engine = case.engine(Backend::Interp);
            let metrics = engine.fusion_metrics();
            let coverage = engine.fused_program().coverage;
            assert!(
                metrics.fused_pairs > 0,
                "{}: fusion grouped no same-receiver call pairs",
                case.name
            );
            // The report mirrors the fused program's own accounting.
            assert_eq!(metrics.fused_pairs, coverage.fused_pairs, "{}", case.name);
            assert_eq!(metrics.missed_pairs, coverage.missed_pairs, "{}", case.name);
            assert!(coverage.candidate_pairs() >= coverage.fused_pairs);
            // The unfused baseline groups nothing — every candidate pair
            // it can still see (bodies are merged per traversal, so only
            // within-traversal pairs remain visible) is missed or blocked.
            let unfused = case
                .engine_with(FusionOptions::unfused(), Backend::Interp)
                .fusion_metrics();
            assert_eq!(
                unfused.fused_pairs, 0,
                "{}: unfused baseline reports fused pairs",
                case.name
            );
        }
    });
}
